package cpu

import (
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

// TestFairLockUncontended pins the zero-cost property: a lock with no
// contention adds no cycles — the critical section runs immediately and
// the only record is the acquisition count.
func TestFairLockUncontended(t *testing.T) {
	eng, c := newCPU()
	l := NewFairLock("l")
	task := c.NewTask("a", IPLThread, 0, ClassKernel)
	done := sim.Time(-1)
	task.PostLocked(l, 10*us, prov.CenterIPInput, func() { done = eng.Now() })
	eng.Run(sim.Time(sim.Second))

	if done != sim.Time(10*us) {
		t.Fatalf("critical section ended at %v, want 10µs", done)
	}
	if l.Acquisitions() != 1 || l.Contended() != 0 {
		t.Fatalf("acquisitions=%d contended=%d, want 1/0", l.Acquisitions(), l.Contended())
	}
	if l.SpinTime() != 0 || l.MaxSpin() != 0 {
		t.Fatalf("spin=%v max=%v, want 0", l.SpinTime(), l.MaxSpin())
	}
	if l.HeldUntil() != sim.Time(10*us) {
		t.Fatalf("HeldUntil=%v, want 10µs", l.HeldUntil())
	}
	if got := c.CenterTime(prov.CenterLock); got != 0 {
		t.Fatalf("CenterLock time=%v, want 0", got)
	}
}

// TestFairLockFIFOHandoff contends three cores on one lock at the same
// instant and checks strict arrival-order handoff: each core's critical
// section starts exactly when its predecessor's ends, the spin cycles
// are charged to CenterLock on the spinning core, and every core's
// cycle ledger still balances.
func TestFairLockFIFOHandoff(t *testing.T) {
	eng := sim.NewEngine()
	sys := NewSystem(eng, 3)
	l := NewFairLock("l")
	const hold = 10 * us

	var order []int
	ends := make([]sim.Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		task := sys.CPU(i).NewTask("t", IPLThread, 0, ClassKernel)
		task.PostLocked(l, hold, prov.CenterIPInput, func() {
			order = append(order, i)
			ends[i] = eng.Now()
		})
	}
	eng.Run(sim.Time(sim.Second))

	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("handoff order = %v, want [0 1 2]", order)
	}
	for i, want := range []sim.Time{sim.Time(10 * us), sim.Time(20 * us), sim.Time(30 * us)} {
		if ends[i] != want {
			t.Fatalf("core %d critical section ended at %v, want %v", i, ends[i], want)
		}
	}
	if l.Acquisitions() != 3 || l.Contended() != 2 {
		t.Fatalf("acquisitions=%d contended=%d, want 3/2", l.Acquisitions(), l.Contended())
	}
	if l.SpinTime() != 30*us || l.MaxSpin() != 20*us {
		t.Fatalf("spin=%v max=%v, want 30µs/20µs", l.SpinTime(), l.MaxSpin())
	}
	// Spin burns cycles on the waiting core: core i spins i·hold, then
	// holds for hold. Busy time and center attribution must agree.
	for i := 0; i < 3; i++ {
		c := sys.CPU(i)
		wantSpin := sim.Duration(i) * hold
		if got := c.CenterTime(prov.CenterLock); got != wantSpin {
			t.Fatalf("core %d CenterLock time=%v, want %v", i, got, wantSpin)
		}
		if got := c.CenterTime(prov.CenterIPInput); got != hold {
			t.Fatalf("core %d hold time=%v, want %v", i, got, hold)
		}
		if got := c.BusyTime(); got != wantSpin+hold {
			t.Fatalf("core %d busy=%v, want %v", i, got, wantSpin+hold)
		}
	}
	if err := sys.AuditCycles(eng.Now()); err != nil {
		t.Fatalf("cycle ledger unbalanced: %v", err)
	}
}

// TestFairLockAlternation pins fairness under sustained contention: two
// cores re-acquiring in a tight loop must alternate strictly — a core
// releasing the lock cannot barge back in ahead of the peer already
// waiting (the starvation an unfair spinlock permits).
func TestFairLockAlternation(t *testing.T) {
	eng := sim.NewEngine()
	sys := NewSystem(eng, 2)
	l := NewFairLock("l")
	const hold, rounds = 10 * us, 4

	var order []int
	for i := 0; i < 2; i++ {
		i := i
		task := sys.CPU(i).NewTask("t", IPLThread, 0, ClassKernel)
		var again func()
		n := 0
		again = func() {
			order = append(order, i)
			n++
			if n < rounds {
				task.PostLocked(l, hold, prov.CenterIPInput, again)
			}
		}
		task.PostLocked(l, hold, prov.CenterIPInput, again)
	}
	eng.Run(sim.Time(sim.Second))

	if len(order) != 2*rounds {
		t.Fatalf("ran %d critical sections, want %d", len(order), 2*rounds)
	}
	for k, owner := range order {
		if owner != k%2 {
			t.Fatalf("acquisition order %v: position %d went to core %d (unfair handoff)", order, k, owner)
		}
	}
}

// TestInterruptFlagSaveRestore checks the spl-style save/restore
// round-trip, including nesting: the flag only truly re-enables at the
// outermost restore.
func TestInterruptFlagSaveRestore(t *testing.T) {
	_, c := newCPU()
	if !c.InterruptsEnabled() {
		t.Fatal("interrupts must start enabled")
	}
	outer := c.SaveAndDisableInterrupts()
	if !outer {
		t.Fatal("outer save returned false, want previous state (enabled)")
	}
	if c.InterruptsEnabled() {
		t.Fatal("interrupts still enabled after outer save")
	}
	inner := c.SaveAndDisableInterrupts()
	if inner {
		t.Fatal("inner save returned true, want previous state (disabled)")
	}
	c.RestoreInterrupts(inner)
	if c.InterruptsEnabled() {
		t.Fatal("inner restore re-enabled interrupts; only the outermost may")
	}
	c.RestoreInterrupts(outer)
	if !c.InterruptsEnabled() {
		t.Fatal("outer restore did not re-enable interrupts")
	}
}

// TestLockedItemBlocksPreemption verifies that a critical section runs
// with interrupts disabled: a device-level interrupt arriving mid-hold
// waits for the unlock instead of preempting, and the interrupt flag is
// restored afterwards so normal preemption resumes.
func TestLockedItemBlocksPreemption(t *testing.T) {
	eng, c := newCPU()
	l := NewFairLock("l")
	low := c.NewTask("low", IPLThread, 0, ClassKernel)
	high := c.NewTask("high", IPLDevice, 0, ClassIntr)

	var lowDone, highDone sim.Time
	low.PostLocked(l, 100*us, prov.CenterIPInput, func() { lowDone = eng.Now() })
	eng.At(sim.Time(40*us), func() {
		high.Post(10*us, func() { highDone = eng.Now() })
	})
	eng.Run(sim.Time(sim.Second))

	if lowDone != sim.Time(100*us) {
		t.Fatalf("critical section ended at %v, want 100µs (uninterrupted)", lowDone)
	}
	if highDone != sim.Time(110*us) {
		t.Fatalf("interrupt ran at %v, want 110µs (after unlock)", highDone)
	}
	if c.Preemptions() != 0 {
		t.Fatalf("Preemptions = %d, want 0 (critical section is preemption-free)", c.Preemptions())
	}
	if !c.InterruptsEnabled() {
		t.Fatal("interrupt flag not restored after unlock")
	}
	if err := c.AuditCycles(eng.Now()); err != nil {
		t.Fatalf("cycle ledger unbalanced: %v", err)
	}
}
