package cpu

import (
	"fmt"

	"livelock/internal/sim"
)

// System is a fixed set of N CPUs sharing one simulation engine — the
// SMP generalization of the single-processor model. Each CPU keeps its
// own run queue, interrupt-enable flag, and cycle ledgers; cross-CPU
// interaction happens only through FairLocks and through tasks posting
// work to tasks that live on other CPUs.
//
// Determinism: the engine serializes every event, and same-instant
// events run in scheduling order (the engine's sequence numbers), so
// the core interleave is a fixed, reproducible function of the
// configuration — there is no hidden scheduler state. Goldens at any
// core count are byte-stable for that reason.
type System struct {
	eng  *sim.Engine
	cpus []*CPU

	// boot embeds CPU 0 and one backs the uniprocessor cpus slice, so
	// the whole complex is a single allocation in the overwhelmingly
	// common CPUs == 1 case (figure sweeps build routers in bulk, and
	// the uniprocessor path must not pay for SMP).
	boot CPU
	one  [1]*CPU
}

// NewSystem returns n idle CPUs attached to the engine (n < 1 is
// treated as 1). CPU 0 is the boot processor: single-threaded kernel
// services (clock, housekeeping, user processes) live there.
func NewSystem(eng *sim.Engine, n int) *System {
	if n < 1 {
		n = 1
	}
	s := &System{eng: eng}
	s.boot.init(eng)
	if n == 1 {
		s.one[0] = &s.boot
		s.cpus = s.one[:]
		return s
	}
	s.cpus = make([]*CPU, n)
	s.cpus[0] = &s.boot
	for i := 1; i < n; i++ {
		c := New(eng)
		c.id = i
		s.cpus[i] = c
	}
	return s
}

// SetLockdep installs (or, with nil, removes) the shared lock-
// discipline checker on every CPU. Call before the engine runs.
func (s *System) SetLockdep(ld *Lockdep) {
	for _, c := range s.cpus {
		c.ld = ld
	}
}

// N returns the number of CPUs.
func (s *System) N() int { return len(s.cpus) }

// CPU returns processor i.
func (s *System) CPU(i int) *CPU { return s.cpus[i] }

// Visit calls fn for every CPU in index order.
func (s *System) Visit(fn func(*CPU)) {
	for _, c := range s.cpus {
		fn(c)
	}
}

// AuditCycles runs the cycle-conservation audit on every core: per
// core, Σ center time must equal busy time and busy + idle must cover
// the elapsed timeline. The first violating core is reported.
func (s *System) AuditCycles(now sim.Time) error {
	for _, c := range s.cpus {
		if err := c.AuditCycles(now); err != nil {
			return fmt.Errorf("cpu%d: %w", c.id, err)
		}
	}
	return nil
}
