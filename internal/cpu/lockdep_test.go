package cpu

import (
	"strings"
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

func newLockdepSystem(t *testing.T, n int) (*sim.Engine, *System, *Lockdep, *[]string) {
	t.Helper()
	eng := sim.NewEngine()
	sys := NewSystem(eng, n)
	ld := NewLockdep()
	var got []string
	ld.SetOnViolation(func(msg string) { got = append(got, msg) })
	sys.SetLockdep(ld)
	return eng, sys, ld, &got
}

// A guarded touch from inside the matching PostLocked commit fn is
// clean; the same touch under a different lock is a violation that
// names both locks.
func TestLockdepWrongLockTouch(t *testing.T) {
	eng, sys, ld, got := newLockdepSystem(t, 2)
	lockA := NewFairLock("a")
	lockB := NewFairLock("b")
	type shared struct{ n int }
	obj := &shared{}
	ld.Guard(obj, lockB, "shared counter")

	task := sys.CPU(0).NewTask("k", IPLSoft, 0, ClassKernel)
	task.PostLocked(lockB, 10*us, prov.CenterIPInput, func() {
		obj.n++
		ld.Check(obj) // correct lock: no violation
	})
	task.PostLocked(lockA, 10*us, prov.CenterIPInput, func() {
		obj.n++
		ld.Check(obj) // wrong lock
	})
	eng.Run(sim.Time(sim.Second))

	if len(*got) != 1 {
		t.Fatalf("violations = %v, want exactly 1", *got)
	}
	msg := (*got)[0]
	if !strings.Contains(msg, `"b"`) || !strings.Contains(msg, `"a"`) {
		t.Fatalf("violation should name both locks: %q", msg)
	}
	if ld.Violations() != 1 || ld.Checks() != 2 {
		t.Fatalf("Violations=%d Checks=%d, want 1 and 2", ld.Violations(), ld.Checks())
	}
}

// A touch from an unlocked item on one CPU while another CPU's
// spin+hold window on the declared lock is open (in simulated time) is
// reported as held-on-wrong-CPU, naming the holder.
func TestLockdepHeldOnWrongCPU(t *testing.T) {
	eng, sys, ld, got := newLockdepSystem(t, 2)
	lock := NewFairLock("tbl")
	type table struct{ n int }
	obj := &table{}
	ld.Guard(obj, lock, "flow table")

	// CPU 0 holds the lock for 100µs starting at t=0.
	holder := sys.CPU(0).NewTask("holder", IPLSoft, 0, ClassKernel)
	holder.PostLocked(lock, 100*us, prov.CenterIPInput, func() {})
	// CPU 1 touches the guarded object at t=40µs without the lock.
	intruder := sys.CPU(1).NewTask("intruder", IPLSoft, 0, ClassKernel)
	eng.At(sim.Time(30*us), func() {
		intruder.Post(10*us, func() {
			obj.n++
			ld.Check(obj)
		})
	})
	eng.Run(sim.Time(sim.Second))

	if len(*got) != 1 {
		t.Fatalf("violations = %v, want exactly 1", *got)
	}
	if !strings.Contains((*got)[0], "held by cpu0") {
		t.Fatalf("violation should identify the holding CPU: %q", (*got)[0])
	}
}

// A touch outside any critical section, with the lock free, is the
// plain not-held violation.
func TestLockdepUnlockedTouch(t *testing.T) {
	eng, sys, ld, got := newLockdepSystem(t, 2)
	lock := NewFairLock("q")
	type q struct{ n int }
	obj := &q{}
	ld.Guard(obj, lock, "queue")

	task := sys.CPU(1).NewTask("k", IPLSoft, 0, ClassKernel)
	task.Post(10*us, func() { ld.Check(obj) })
	eng.Run(sim.Time(sim.Second))

	if len(*got) != 1 || !strings.Contains((*got)[0], "outside any critical section") {
		t.Fatalf("violations = %v, want one not-held report", *got)
	}
}

// Nested PostLocked in opposite orders on two CPUs builds a->b and
// b->a edges; the second edge closes a cycle and is reported even
// though this schedule never deadlocks (the engine serializes them).
func TestLockdepOrderCycleDetection(t *testing.T) {
	eng, sys, ld, got := newLockdepSystem(t, 2)
	lockA := NewFairLock("a")
	lockB := NewFairLock("b")

	t0 := sys.CPU(0).NewTask("t0", IPLSoft, 0, ClassKernel)
	t1 := sys.CPU(1).NewTask("t1", IPLSoft, 0, ClassKernel)
	t0.PostLocked(lockA, 10*us, prov.CenterIPInput, func() {
		t0.PostLocked(lockB, 10*us, prov.CenterIPInput, nil)
	})
	eng.At(sim.Time(200*us), func() {
		t1.PostLocked(lockB, 10*us, prov.CenterIPInput, func() {
			t1.PostLocked(lockA, 10*us, prov.CenterIPInput, nil)
		})
	})
	eng.Run(sim.Time(sim.Second))

	if len(*got) != 1 {
		t.Fatalf("violations = %v, want exactly 1 cycle report", *got)
	}
	if !strings.Contains((*got)[0], "lock-order cycle") {
		t.Fatalf("want a cycle report, got %q", (*got)[0])
	}
	edges := ld.OrderEdges()
	if len(edges) != 2 || edges[0] != "a->b" || edges[1] != "b->a" {
		t.Fatalf("OrderEdges = %v", edges)
	}
}

// Tail-recursive re-posts of the same lock (the SMP kernel loops) are
// not nesting and must not create self-edges or violations.
func TestLockdepSelfRepostIsNotNesting(t *testing.T) {
	eng, sys, ld, got := newLockdepSystem(t, 2)
	lock := NewFairLock("loop")
	task := sys.CPU(0).NewTask("k", IPLSoft, 0, ClassKernel)
	n := 0
	var step func()
	step = func() {
		if n++; n < 5 {
			task.PostLocked(lock, 10*us, prov.CenterIPInput, step)
		}
	}
	task.PostLocked(lock, 10*us, prov.CenterIPInput, step)
	eng.Run(sim.Time(sim.Second))

	if len(*got) != 0 || len(ld.OrderEdges()) != 0 {
		t.Fatalf("violations=%v edges=%v, want none", *got, ld.OrderEdges())
	}
}

// A nil *Lockdep is inert: every method no-ops, so call sites need no
// enablement branches.
func TestLockdepNilReceiverIsInert(t *testing.T) {
	var ld *Lockdep
	ld.Check(&struct{ n int }{})
	ld.Guard(nil, nil, "") // even invalid args are ignored when disabled
	ld.SetOnViolation(nil)
	if ld.Violations() != 0 || ld.Checks() != 0 || ld.OrderEdges() != nil {
		t.Fatal("nil Lockdep must report zero state")
	}
}

// The disabled path must not allocate: posting and completing locked
// work with no Lockdep installed stays allocation-free per item, and a
// nil-receiver Check on a pointer argument is free too.
func TestLockdepDisabledPathZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	sys := NewSystem(eng, 2)
	lock := NewFairLock("l")
	task := sys.CPU(0).NewTask("k", IPLSoft, 0, ClassKernel)
	obj := &struct{ n int }{}
	var ld *Lockdep

	// Warm up the item ring so append doesn't grow it mid-measurement.
	task.PostLocked(lock, 10*us, prov.CenterIPInput, nil)
	eng.Run(sim.Time(100 * us))

	allocs := testing.AllocsPerRun(100, func() {
		task.PostLocked(lock, 10*us, prov.CenterIPInput, nil)
		eng.Run(eng.Now() + sim.Time(100*us))
		ld.Check(obj)
	})
	if allocs != 0 {
		t.Fatalf("disabled lockdep path allocates %.1f per op, want 0", allocs)
	}
}
