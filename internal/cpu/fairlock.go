package cpu

import "livelock/internal/sim"

// FairLock is a FIFO spin lock over simulated time, modeled on the
// awkernel fair-lock discipline: an acquirer saves its CPU's
// interrupt-enable flag, disables interrupts, and waits its turn in
// strict arrival order; release hands the lock directly to the next
// waiter and restores the saved flag. Because critical sections run
// with interrupts disabled they are never preempted, so every holder
// releases exactly its hold cost after acquiring — which lets the lock
// hand out reservations at acquisition time instead of simulating the
// spin cycle by cycle. Spin time is real busy time: the CPU burns those
// cycles (charged to prov.CenterLock) making no forward progress,
// which is exactly how livelock resurfaces as contention on SMP.
//
// FairLock is driven entirely from engine events (via Task.PostLocked),
// so acquisition order is the engine's deterministic event order.
type FairLock struct {
	name        string
	availableAt sim.Time

	acquisitions uint64
	contended    uint64
	spinTime     sim.Duration
	maxSpin      sim.Duration
}

// NewFairLock returns an uncontended lock. The name appears in metric
// columns (lock.<name>.*).
func NewFairLock(name string) *FairLock {
	return &FairLock{name: name}
}

// Name returns the lock's name.
func (l *FairLock) Name() string { return l.name }

// reserve acquires the lock at the earliest instant ≥ now it is free,
// reserving it for hold. It returns the spin delay (0 when
// uncontended). Callers acquire in reserve order: FIFO handoff.
func (l *FairLock) reserve(now sim.Time, hold sim.Duration) sim.Duration {
	start := now
	if l.availableAt > start {
		start = l.availableAt
		l.contended++
	}
	spin := start.Sub(now)
	l.availableAt = start.Add(hold)
	l.acquisitions++
	l.spinTime += spin
	if spin > l.maxSpin {
		l.maxSpin = spin
	}
	return spin
}

// Acquisitions returns the total number of acquisitions.
func (l *FairLock) Acquisitions() uint64 { return l.acquisitions }

// Contended returns how many acquisitions had to spin.
func (l *FairLock) Contended() uint64 { return l.contended }

// SpinTime returns the total time all CPUs spent spinning on the lock.
func (l *FairLock) SpinTime() sim.Duration { return l.spinTime }

// MaxSpin returns the longest single spin.
func (l *FairLock) MaxSpin() sim.Duration { return l.maxSpin }

// HeldUntil returns the instant the lock becomes free given current
// reservations (useful for tests; in the past when uncontended).
func (l *FairLock) HeldUntil() sim.Time { return l.availableAt }
