package cpu

import (
	"testing"
	"testing/quick"

	"livelock/internal/sim"
)

// TestSchedulingInvariants drives the CPU with randomized workloads and
// checks global invariants that must hold for any schedule:
//
//  1. conservation: busy time + idle time == elapsed time;
//  2. per-task accounting sums to busy time;
//  3. every posted item eventually completes when given enough time;
//  4. higher-priority total turnaround never suffers from lower-priority
//     load (priority isolation: the highest-priority task's completion
//     time is independent of other tasks).
func TestSchedulingInvariants(t *testing.T) {
	type postSpec struct {
		Task  uint8
		At    uint16 // µs
		Cost  uint16 // µs
		Count uint8
	}
	check := func(specs []postSpec) bool {
		eng := sim.NewEngine()
		c := New(eng)
		tasks := []*Task{
			c.NewTask("intr", IPLDevice, 0, ClassIntr),
			c.NewTask("soft", IPLSoft, 0, ClassSoft),
			c.NewTask("kernA", IPLThread, 5, ClassKernel),
			c.NewTask("kernB", IPLThread, 5, ClassKernel),
			c.NewTask("user", IPLThread, 1, ClassUser),
		}
		completed := 0
		want := 0
		var totalCost sim.Duration
		for _, sp := range specs {
			task := tasks[int(sp.Task)%len(tasks)]
			n := int(sp.Count%4) + 1
			cost := sim.Duration(sp.Cost%500) * sim.Microsecond
			at := sim.Time(sp.At) * sim.Time(sim.Microsecond)
			want += n
			totalCost += sim.Duration(n) * cost
			for i := 0; i < n; i++ {
				eng.At(at, func() {
					task.Post(cost, func() { completed++ })
				})
			}
		}
		// Far beyond the sum of all work.
		horizon := sim.Time(sim.Second)
		eng.Run(horizon)

		if completed != want {
			return false
		}
		if c.BusyTime() != totalCost {
			return false
		}
		var perTask sim.Duration
		for _, task := range tasks {
			perTask += task.Consumed()
		}
		if perTask != c.BusyTime() {
			return false
		}
		return c.BusyTime()+c.IdleTime() == sim.Duration(horizon)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPriorityIsolationProperty: the completion time of device-IPL work
// is unaffected by any amount of lower-priority load.
func TestPriorityIsolationProperty(t *testing.T) {
	type noise struct {
		At   uint16
		Cost uint16
	}
	run := func(noisy []noise) sim.Time {
		eng := sim.NewEngine()
		c := New(eng)
		intr := c.NewTask("intr", IPLDevice, 0, ClassIntr)
		low := c.NewTask("low", IPLThread, 0, ClassUser)
		for _, n := range noisy {
			at := sim.Time(n.At) * sim.Time(sim.Microsecond)
			cost := sim.Duration(n.Cost%200+1) * sim.Microsecond
			eng.At(at, func() { low.Post(cost, nil) })
		}
		var done sim.Time
		eng.At(sim.Time(10*sim.Millisecond), func() {
			intr.Post(100*sim.Microsecond, func() { done = eng.Now() })
		})
		eng.Run(sim.Time(sim.Second))
		return done
	}
	baseline := run(nil)
	check := func(noisy []noise) bool {
		return run(noisy) == baseline
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
