package cpu

import (
	"fmt"
	"sort"
	"strings"
)

// Lockdep is the runtime half of the lock-discipline verifier (the
// static half is the lockguard pass in internal/analysis/lockguard).
// Guarded objects register the FairLock that protects them; in debug
// builds every touch of a guarded object asserts that the touching
// context is a critical section under exactly that lock, and every
// nested acquisition feeds a lock-order graph whose cycles predict
// deadlock from a single schedule — the interleaving that would
// actually deadlock never has to be reached, which matters because the
// engine runs one fixed interleave per seed.
//
// The model exploits the simulator's structure: all virtual CPUs run in
// one goroutine and a work item's fn executes atomically at its
// completion instant, so at any real-time moment at most one critical
// section's commit fn is on the stack. A single (curCPU, curLock) pair
// therefore identifies "the" current critical section exactly. Locks,
// however, are held across *simulated* time — a FairLock is owned by
// some CPU for its whole spin+hold window — so a touch from another
// CPU's unlocked item while the window is open is distinguishable as
// held-on-wrong-CPU rather than merely not-held.
//
// A nil *Lockdep is valid and inert: every exported method is a no-op,
// and the CPU dispatch hooks are all behind `ld != nil` checks, so the
// disabled path adds no allocations and no work beyond a nil compare.
type Lockdep struct {
	guards map[any]*FairLock // guarded object -> declared lock
	what   map[any]string    // guarded object -> description for diagnostics

	// edges is the runtime lock-order graph: edges[a][b] means a
	// critical section under a posted (logically: nested) an
	// acquisition of b. Any cycle predicts deadlock.
	edges map[*FairLock]map[*FairLock]bool

	// owner tracks which CPU most recently reserved each lock and has
	// not yet completed its critical section; used to enrich
	// violations with who actually holds the lock.
	owner map[*FairLock]*CPU

	// curCPU/curLock identify the critical-section commit fn currently
	// executing, nil outside any locked item's fn.
	curCPU  *CPU
	curLock *FairLock

	onViolation func(string) // nil means panic
	violations  uint64
	checks      uint64
}

// NewLockdep returns an empty checker. It must be installed with
// System.SetLockdep before the engine runs.
func NewLockdep() *Lockdep {
	return &Lockdep{
		guards: make(map[any]*FairLock),
		what:   make(map[any]string),
		edges:  make(map[*FairLock]map[*FairLock]bool),
		owner:  make(map[*FairLock]*CPU),
	}
}

// Guard declares that obj (a pointer to some shared structure) is
// protected by l. what names the object in diagnostics.
func (ld *Lockdep) Guard(obj any, l *FairLock, what string) {
	if ld == nil {
		return
	}
	if obj == nil {
		panic("lockdep: Guard of nil object")
	}
	if l == nil {
		panic("lockdep: Guard with nil lock")
	}
	ld.guards[obj] = l
	ld.what[obj] = what
}

// SetOnViolation installs a reporting callback; without one, any
// violation panics (tests and the explore plane install collectors).
func (ld *Lockdep) SetOnViolation(fn func(string)) {
	if ld == nil {
		return
	}
	ld.onViolation = fn
}

// Violations returns the number of discipline violations observed.
func (ld *Lockdep) Violations() uint64 {
	if ld == nil {
		return 0
	}
	return ld.violations
}

// Checks returns the number of guarded touches asserted (for tests
// that want to prove the checker actually ran).
func (ld *Lockdep) Checks() uint64 {
	if ld == nil {
		return 0
	}
	return ld.checks
}

// Check asserts that the currently-executing context is a critical
// section under obj's declared lock. Nil-receiver safe so call sites
// need no enablement branches; the conversion of a pointer argument to
// `any` does not allocate.
func (ld *Lockdep) Check(obj any) {
	if ld == nil {
		return
	}
	ld.check(obj)
}

func (ld *Lockdep) check(obj any) {
	ld.checks++
	l, ok := ld.guards[obj]
	if !ok {
		ld.violate(fmt.Sprintf("lockdep: touch of unregistered object %T", obj))
		return
	}
	if ld.curLock == l {
		return
	}
	name := ld.what[obj]
	switch {
	case ld.curLock != nil:
		ld.violate(fmt.Sprintf("lockdep: %s (guarded by %q) touched inside a critical section under %q on cpu%d",
			name, l.Name(), ld.curLock.Name(), ld.curCPU.ID()))
	case ld.owner[l] != nil:
		ld.violate(fmt.Sprintf("lockdep: %s touched while its lock %q is held by cpu%d (touching context does not hold it)",
			name, l.Name(), ld.owner[l].ID()))
	default:
		ld.violate(fmt.Sprintf("lockdep: %s (guarded by %q) touched outside any critical section",
			name, l.Name()))
	}
}

// acquire records that c reserved l (dispatch time of a locked item):
// the spin+hold window opens here and closes at release.
func (ld *Lockdep) acquire(c *CPU, l *FairLock) {
	ld.owner[l] = c
}

// release closes c's window on l. A later reserver may already have
// overwritten the owner entry (FIFO contention); leave it in place.
func (ld *Lockdep) release(c *CPU, l *FairLock) {
	if ld.owner[l] == c {
		delete(ld.owner, l)
	}
}

// enter/exit bracket a locked item's commit fn: the fn runs logically
// at the unlock instant, still inside the critical section.
func (ld *Lockdep) enter(c *CPU, l *FairLock) {
	ld.curCPU, ld.curLock = c, l
}

func (ld *Lockdep) exit() {
	ld.curCPU, ld.curLock = nil, nil
}

// posted records a PostLocked(l) issued from inside a critical section
// under curLock — the simulator's form of nested acquisition — as a
// lock-order edge, and rejects any edge that completes a cycle. Posts
// from unlocked contexts (or before the engine runs) carry no ordering
// obligation. Self-edges are tail-recursive re-posts of the same
// section (rxLoopSMP and friends), not nesting.
func (ld *Lockdep) posted(l *FairLock) {
	from := ld.curLock
	if from == nil || from == l {
		return
	}
	m := ld.edges[from]
	if m == nil {
		m = make(map[*FairLock]bool)
		ld.edges[from] = m
	}
	if m[l] {
		return
	}
	m[l] = true
	if path := ld.findPath(l, from, map[*FairLock]bool{}); path != nil {
		names := make([]string, 0, len(path)+1)
		names = append(names, from.Name())
		for _, p := range path {
			names = append(names, p.Name())
		}
		ld.violate(fmt.Sprintf("lockdep: lock-order cycle: %s (edge %q -> %q closes it)",
			strings.Join(names, " -> "), from.Name(), l.Name()))
	}
}

// findPath returns the node sequence from `from` to `to` along order
// edges (inclusive of both), or nil if unreachable. Iteration order is
// made deterministic by sorting neighbors by name so violation text is
// stable across runs.
func (ld *Lockdep) findPath(from, to *FairLock, seen map[*FairLock]bool) []*FairLock {
	if from == to {
		return []*FairLock{from}
	}
	if seen[from] {
		return nil
	}
	seen[from] = true
	next := make([]*FairLock, 0, len(ld.edges[from]))
	for n := range ld.edges[from] {
		next = append(next, n)
	}
	sort.Slice(next, func(i, j int) bool { return next[i].Name() < next[j].Name() })
	for _, n := range next {
		if path := ld.findPath(n, to, seen); path != nil {
			return append([]*FairLock{from}, path...)
		}
	}
	return nil
}

// OrderEdges returns the observed lock-order graph as "a->b" strings,
// sorted, for tests and explore-plane fingerprinting.
func (ld *Lockdep) OrderEdges() []string {
	if ld == nil {
		return nil
	}
	var out []string
	for a, m := range ld.edges {
		for b := range m {
			out = append(out, a.Name()+"->"+b.Name())
		}
	}
	sort.Strings(out)
	return out
}

func (ld *Lockdep) violate(msg string) {
	ld.violations++
	if ld.onViolation != nil {
		ld.onViolation(msg)
		return
	}
	panic(msg)
}
