package core

import (
	"testing"

	"livelock/internal/sim"
)

func TestFeedbackInhibitsAndReleases(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate()
	fb := NewFeedback(eng, g, "screendq", sim.Millisecond)

	fb.QueueHigh()
	if g.Open() || !fb.Inhibited() {
		t.Fatal("gate open after QueueHigh")
	}
	if fb.Inhibits.Value() != 1 {
		t.Fatalf("Inhibits = %d", fb.Inhibits.Value())
	}
	fb.QueueLow()
	if !g.Open() {
		t.Fatal("gate closed after QueueLow")
	}
	// The timer must have been cancelled: running past the timeout does
	// not change anything or count a timeout.
	eng.Run(sim.Time(10 * sim.Millisecond))
	if fb.Timeouts.Value() != 0 {
		t.Fatalf("Timeouts = %d after clean release", fb.Timeouts.Value())
	}
}

func TestFeedbackTimeoutReenables(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate()
	fb := NewFeedback(eng, g, "screendq", sim.Millisecond)
	fb.QueueHigh()
	eng.Run(sim.Time(999 * sim.Microsecond))
	if g.Open() {
		t.Fatal("gate opened before timeout")
	}
	eng.Run(sim.Time(sim.Millisecond))
	if !g.Open() {
		t.Fatal("gate still closed after timeout (hung-consumer recovery)")
	}
	if fb.Timeouts.Value() != 1 {
		t.Fatalf("Timeouts = %d, want 1", fb.Timeouts.Value())
	}
}

func TestFeedbackRepeatedHighIdempotentButRearms(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate()
	fb := NewFeedback(eng, g, "q", sim.Millisecond)
	fb.QueueHigh()
	fb.QueueHigh() // still inhibited: no double-count
	if fb.Inhibits.Value() != 1 {
		t.Fatalf("Inhibits = %d, want 1", fb.Inhibits.Value())
	}
	eng.Run(sim.Time(sim.Millisecond)) // timeout releases
	fb.QueueHigh()                     // queue still above high: re-inhibit
	if g.Open() {
		t.Fatal("gate open after re-inhibit")
	}
	if fb.Inhibits.Value() != 2 {
		t.Fatalf("Inhibits = %d, want 2", fb.Inhibits.Value())
	}
}

func TestFeedbackZeroTimeoutNeverRearms(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate()
	fb := NewFeedback(eng, g, "q", 0)
	fb.QueueHigh()
	eng.Run(sim.Time(sim.Second))
	if g.Open() {
		t.Fatal("gate opened without a timeout configured")
	}
	fb.QueueLow()
	if !g.Open() {
		t.Fatal("QueueLow did not release")
	}
}

func TestCycleLimiterBudget(t *testing.T) {
	g := NewGate()
	l := NewCycleLimiter(g, "cycles", 10*sim.Millisecond, 0.25)
	l.NoteUsage(2 * sim.Millisecond)
	if l.Inhibited() {
		t.Fatal("inhibited below budget")
	}
	l.NoteUsage(600 * sim.Microsecond) // total 2.6ms > 2.5ms budget
	if !l.Inhibited() {
		t.Fatal("not inhibited above budget")
	}
	if l.Inhibits.Value() != 1 {
		t.Fatalf("Inhibits = %d", l.Inhibits.Value())
	}
	l.Tick()
	if l.Inhibited() || l.Used() != 0 {
		t.Fatal("Tick did not reset")
	}
}

func TestCycleLimiterThresholdOneNeverInhibits(t *testing.T) {
	g := NewGate()
	l := NewCycleLimiter(g, "cycles", 10*sim.Millisecond, 1.0)
	l.NoteUsage(100 * sim.Millisecond)
	if l.Inhibited() {
		t.Fatal("threshold 1.0 inhibited input")
	}
}

func TestCycleLimiterIdleReset(t *testing.T) {
	g := NewGate()
	l := NewCycleLimiter(g, "cycles", 10*sim.Millisecond, 0.1)
	l.NoteUsage(5 * sim.Millisecond)
	if !l.Inhibited() {
		t.Fatal("not inhibited")
	}
	l.OnIdle()
	if l.Inhibited() || l.Used() != 0 {
		t.Fatal("OnIdle did not reset")
	}
	if l.IdleResets.Value() != 1 {
		t.Fatalf("IdleResets = %d", l.IdleResets.Value())
	}
	// Idle with nothing outstanding does not count.
	l.OnIdle()
	if l.IdleResets.Value() != 1 {
		t.Fatalf("IdleResets = %d after no-op idle", l.IdleResets.Value())
	}
}

func TestCycleLimiterValidation(t *testing.T) {
	g := NewGate()
	for _, f := range []func(){
		func() { NewCycleLimiter(g, "x", 0, 0.5) },
		func() { NewCycleLimiter(g, "x", sim.Millisecond, -0.1) },
		func() { NewCycleLimiter(g, "x", sim.Millisecond, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid limiter config did not panic")
				}
			}()
			f()
		}()
	}
}
