package core

import "testing"

func TestGateBasics(t *testing.T) {
	g := NewGate()
	if !g.Open() {
		t.Fatal("new gate should be open")
	}
	var transitions []bool
	g.OnChange = func(open bool) { transitions = append(transitions, open) }

	g.Inhibit("feedback")
	if g.Open() {
		t.Fatal("gate open after inhibit")
	}
	g.Inhibit("feedback") // idempotent
	g.Inhibit("cycles")
	g.Release("feedback")
	if g.Open() {
		t.Fatal("gate open while another source holds it")
	}
	g.Release("cycles")
	if !g.Open() {
		t.Fatal("gate closed after all releases")
	}
	want := []bool{false, true}
	if len(transitions) != 2 || transitions[0] != want[0] || transitions[1] != want[1] {
		t.Fatalf("transitions = %v, want %v (edge-triggered only)", transitions, want)
	}
}

func TestGateReleaseWithoutHold(t *testing.T) {
	g := NewGate()
	fired := false
	g.OnChange = func(bool) { fired = true }
	g.Release("nobody")
	if fired {
		t.Fatal("OnChange fired for a no-op release")
	}
}

func TestGateHolds(t *testing.T) {
	g := NewGate()
	g.Inhibit("a")
	if !g.Holds("a") || g.Holds("b") {
		t.Fatal("Holds misreported")
	}
}
