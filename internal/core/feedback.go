package core

import (
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// Feedback implements queue-state feedback (§6.6.1): when a downstream
// queue (e.g. the screend input queue) reaches its high watermark, input
// processing is inhibited so the CPU drains the queue instead of
// wastefully filling it; input is re-enabled when the queue falls to its
// low watermark, or after a timeout in case the consumer is hung ("we
// also set a timeout, arbitrarily chosen as one clock tick, or about
// 1 msec ... so that packets for other consumers are not dropped
// indefinitely").
//
// Wire QueueHigh/QueueLow to the queue's watermark callbacks and pass a
// Gate source name; Feedback manipulates the gate.
type Feedback struct {
	eng     *sim.Engine
	gate    *Gate
	source  string
	timeout sim.Duration
	timer   sim.Handle

	// Inhibits counts transitions into the inhibited state; Timeouts
	// counts re-enables forced by the timeout rather than the low
	// watermark.
	Inhibits *stats.Counter
	Timeouts *stats.Counter
}

// NewFeedback returns a controller operating on gate under the given
// source name. timeout <= 0 disables the hang-recovery timer.
func NewFeedback(eng *sim.Engine, gate *Gate, source string, timeout sim.Duration) *Feedback {
	return &Feedback{
		eng: eng, gate: gate, source: source, timeout: timeout,
		Inhibits: stats.NewCounter(source + ".inhibits"),
		Timeouts: stats.NewCounter(source + ".timeouts"),
	}
}

// QueueHigh handles the queue reaching its high watermark.
func (f *Feedback) QueueHigh() {
	if f.gate.Holds(f.source) {
		return
	}
	f.Inhibits.Inc()
	f.gate.Inhibit(f.source)
	if f.timeout > 0 {
		f.timer = f.eng.AfterCall(f.timeout, feedbackTimeout, f, nil)
	}
}

// QueueLow handles the queue draining to its low watermark.
func (f *Feedback) QueueLow() {
	f.eng.Cancel(f.timer)
	f.timer = sim.Handle{}
	f.gate.Release(f.source)
}

// Progress notes that the protected queue's consumer handled a packet.
// While input is inhibited, progress re-arms the hang-recovery timer:
// the timeout exists to catch a *hung* consumer ("in case the screend
// program is hung"), so a live consumer should never trip it even when a
// full drain takes longer than the timeout.
func (f *Feedback) Progress() {
	if f.timer.Pending() {
		f.eng.Cancel(f.timer)
		f.timer = f.eng.AfterCall(f.timeout, feedbackTimeout, f, nil)
	}
}

// feedbackTimeout is the hang-recovery callback (sim.Callback shape):
// re-arming on every consumer step must not allocate, since a busy
// inhibited drain re-arms once per packet.
func feedbackTimeout(a, _ any) { a.(*Feedback).onTimeout() }

func (f *Feedback) onTimeout() {
	f.timer = sim.Handle{}
	if f.gate.Holds(f.source) {
		f.Timeouts.Inc()
		f.gate.Release(f.source)
	}
}

// Inhibited reports whether this controller currently inhibits input.
func (f *Feedback) Inhibited() bool { return f.gate.Holds(f.source) }
