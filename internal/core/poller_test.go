package core

import (
	"testing"

	"livelock/internal/cpu"
	"livelock/internal/sim"
)

const us = sim.Microsecond

// fakeDevice provides scripted work for poller tests.
type fakeDevice struct {
	name    string
	rxWork  int // units of rx work remaining
	txWork  int
	rxCost  sim.Duration
	txCost  sim.Duration
	rxDone  int
	txDone  int
	enables int
	// order records the interleaving of processed units.
	order *[]string
}

func (f *fakeDevice) device() *Device {
	return &Device{
		Name: f.name,
		Rx: func() (sim.Duration, func(), bool) {
			if f.rxWork == 0 {
				return 0, nil, false
			}
			f.rxWork--
			return f.rxCost, func() {
				f.rxDone++
				if f.order != nil {
					*f.order = append(*f.order, f.name+".rx")
				}
			}, true
		},
		Tx: func() (sim.Duration, func(), bool) {
			if f.txWork == 0 {
				return 0, nil, false
			}
			f.txWork--
			return f.txCost, func() {
				f.txDone++
				if f.order != nil {
					*f.order = append(*f.order, f.name+".tx")
				}
			}, true
		},
		EnableInterrupts: func() { f.enables++ },
	}
}

func newPollerHarness(quota int) (*sim.Engine, *cpu.CPU, *Poller) {
	eng := sim.NewEngine()
	c := cpu.New(eng)
	p := NewPoller(eng, c, 10, PollerConfig{
		Quota:      quota,
		WakeupCost: 10 * us,
		RoundCost:  5 * us,
	})
	return eng, c, p
}

func TestPollerProcessesAllWork(t *testing.T) {
	eng, _, p := newPollerHarness(5)
	f := &fakeDevice{name: "d0", rxWork: 12, txWork: 3, rxCost: 10 * us, txCost: 5 * us}
	p.Register(f.device())
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	if f.rxDone != 12 || f.txDone != 3 {
		t.Fatalf("processed rx=%d tx=%d, want 12/3", f.rxDone, f.txDone)
	}
	if p.RxSteps.Value() != 12 || p.TxSteps.Value() != 3 {
		t.Fatalf("counters rx=%d tx=%d", p.RxSteps.Value(), p.TxSteps.Value())
	}
	if f.enables != 1 {
		t.Fatalf("EnableInterrupts called %d times, want 1", f.enables)
	}
	if p.Scheduled() {
		t.Fatal("poller still scheduled after draining")
	}
}

func TestPollerQuotaInterleavesDirections(t *testing.T) {
	eng, _, p := newPollerHarness(2)
	var order []string
	f := &fakeDevice{name: "d0", rxWork: 4, txWork: 4, rxCost: 10 * us, txCost: 10 * us, order: &order}
	p.Register(f.device())
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	want := []string{"d0.rx", "d0.rx", "d0.tx", "d0.tx", "d0.rx", "d0.rx", "d0.tx", "d0.tx"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPollerRoundRobinAcrossDevices(t *testing.T) {
	eng, _, p := newPollerHarness(1)
	var order []string
	a := &fakeDevice{name: "a", rxWork: 2, rxCost: 10 * us, order: &order}
	b := &fakeDevice{name: "b", rxWork: 2, rxCost: 10 * us, order: &order}
	p.Register(a.device())
	p.Register(b.device())
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	want := []string{"a.rx", "b.rx", "a.rx", "b.rx"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v (fair round-robin)", order, want)
		}
	}
}

func TestPollerUnlimitedQuotaDrainsBeforeTx(t *testing.T) {
	// With no quota, the rx callback keeps control until its work is
	// exhausted — the behaviour that causes transmit starvation.
	eng, _, p := newPollerHarness(0)
	var order []string
	f := &fakeDevice{name: "d", rxWork: 5, txWork: 1, rxCost: 10 * us, txCost: 10 * us, order: &order}
	p.Register(f.device())
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	for i := 0; i < 5; i++ {
		if order[i] != "d.rx" {
			t.Fatalf("order = %v: tx ran before rx drained with no quota", order)
		}
	}
	if order[5] != "d.tx" {
		t.Fatalf("order = %v", order)
	}
}

func TestPollerScheduleIdempotent(t *testing.T) {
	eng, _, p := newPollerHarness(5)
	f := &fakeDevice{name: "d", rxWork: 1, rxCost: 10 * us}
	p.Register(f.device())
	p.Schedule()
	p.Schedule()
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	if p.Wakeups.Value() != 1 {
		t.Fatalf("Wakeups = %d, want 1", p.Wakeups.Value())
	}
}

func TestPollerRxGate(t *testing.T) {
	eng, _, p := newPollerHarness(5)
	f := &fakeDevice{name: "d", rxWork: 5, txWork: 2, rxCost: 10 * us, txCost: 10 * us}
	p.Register(f.device())
	inhibited := true
	p.SetRxGate(func(*Device) bool { return !inhibited })
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	if f.rxDone != 0 {
		t.Fatalf("rx processed %d units while inhibited", f.rxDone)
	}
	if f.txDone != 2 {
		t.Fatalf("tx processed %d units, want 2 (tx unaffected by input gate)", f.txDone)
	}
	// Re-open the gate and reschedule: rx drains now.
	inhibited = false
	p.Schedule()
	eng.Run(sim.Time(2 * sim.Second))
	if f.rxDone != 5 {
		t.Fatalf("rx processed %d units after gate opened, want 5", f.rxDone)
	}
}

func TestPollerUsageHook(t *testing.T) {
	eng, _, p := newPollerHarness(2)
	f := &fakeDevice{name: "d", rxWork: 4, rxCost: 100 * us}
	p.Register(f.device())
	var total sim.Duration
	p.SetUsageHook(func(d sim.Duration) { total += d })
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	// All poller CPU time must be reported: 4×100µs work + wakeup 10µs +
	// round costs. Expect total == task consumed.
	if total != p.Task().Consumed() {
		t.Fatalf("usage hook total %v != task consumed %v", total, p.Task().Consumed())
	}
	if total < 400*us {
		t.Fatalf("usage %v, want >= 400µs", total)
	}
}

func TestPollerWorkArrivingDuringRun(t *testing.T) {
	eng, _, p := newPollerHarness(5)
	f := &fakeDevice{name: "d", rxWork: 1, rxCost: 10 * us}
	p.Register(f.device())
	p.Schedule()
	// More work appears mid-run; the extra sweep must pick it up without
	// a new Schedule call.
	eng.At(sim.Time(12*us), func() { f.rxWork += 2 })
	eng.Run(sim.Time(sim.Second))
	if f.rxDone != 3 {
		t.Fatalf("rxDone = %d, want 3", f.rxDone)
	}
}

func TestPollerReschedulesFromEnable(t *testing.T) {
	// If EnableInterrupts finds a backlog and calls Schedule (as the NIC
	// wiring does), the poller must wake again.
	eng, _, p := newPollerHarness(5)
	f := &fakeDevice{name: "d", rxWork: 1, rxCost: 10 * us}
	dev := f.device()
	enables := 0
	dev.EnableInterrupts = func() {
		enables++
		if enables == 1 {
			f.rxWork = 1 // a packet arrived while finishing
			p.Schedule()
		}
	}
	p.Register(dev)
	p.Schedule()
	eng.Run(sim.Time(sim.Second))
	if f.rxDone != 2 {
		t.Fatalf("rxDone = %d, want 2", f.rxDone)
	}
	if p.Wakeups.Value() != 2 {
		t.Fatalf("Wakeups = %d, want 2", p.Wakeups.Value())
	}
}

func TestPollerRegisterValidation(t *testing.T) {
	_, _, p := newPollerHarness(1)
	defer func() {
		if recover() == nil {
			t.Fatal("registering device without steps did not panic")
		}
	}()
	p.Register(&Device{Name: "bad"})
}
