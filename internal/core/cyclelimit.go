package core

import (
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// CycleLimiter implements §7's mechanism for guaranteeing progress to
// user-level processes: the CPU time spent in packet processing is
// accumulated over a fixed period (the paper uses 10 ms, matching the
// scheduler quantum); once the running total exceeds a threshold
// fraction of the period, input handling is inhibited for the remainder
// of the period. A period-boundary timer clears the total and re-enables
// input; execution of the idle loop also re-enables input and clears the
// total (there is obviously no need to throttle packet processing while
// the CPU has spare cycles).
type CycleLimiter struct {
	gate   *Gate
	source string

	// Period is the accounting period (paper: 10 ms).
	Period sim.Duration
	// Threshold is the fraction of each period that packet processing
	// may use, in [0, 1]. 1 disables limiting.
	Threshold float64

	used   sim.Duration
	budget sim.Duration

	// Inhibits counts threshold crossings; IdleResets counts early
	// re-enables from the idle loop.
	Inhibits   *stats.Counter
	IdleResets *stats.Counter
}

// NewCycleLimiter returns a limiter operating on gate under the given
// source name. Call Start to arm the period timer.
func NewCycleLimiter(gate *Gate, source string, period sim.Duration, threshold float64) *CycleLimiter {
	if period <= 0 {
		panic("core: non-positive cycle-limit period")
	}
	if threshold < 0 || threshold > 1 {
		panic("core: threshold outside [0,1]")
	}
	return &CycleLimiter{
		gate:       gate,
		source:     source,
		Period:     period,
		Threshold:  threshold,
		budget:     sim.Duration(float64(period) * threshold),
		Inhibits:   stats.NewCounter(source + ".inhibits"),
		IdleResets: stats.NewCounter(source + ".idleresets"),
	}
}

// NoteUsage records CPU time spent in packet processing (invoked from
// the poller's usage hook at each callback-visit boundary — the paper
// notes the cycle threshold "is checked only after handling a burst of
// input packets"). Crossing the budget inhibits input immediately.
func (l *CycleLimiter) NoteUsage(d sim.Duration) {
	l.used += d
	if l.Threshold >= 1 {
		return
	}
	if l.used >= l.budget && !l.gate.Holds(l.source) {
		l.Inhibits.Inc()
		l.gate.Inhibit(l.source)
	}
}

// Tick is the period-boundary timer function: it clears the running
// total and re-enables input handling.
func (l *CycleLimiter) Tick() {
	l.used = 0
	l.gate.Release(l.source)
}

// OnIdle is the idle-thread hook: spare cycles mean packet processing
// cannot be starving anyone, so the total is cleared and input
// re-enabled early.
func (l *CycleLimiter) OnIdle() {
	if l.used != 0 || l.gate.Holds(l.source) {
		l.IdleResets.Inc()
	}
	l.used = 0
	l.gate.Release(l.source)
}

// Used returns the running total for the current period.
func (l *CycleLimiter) Used() sim.Duration { return l.used }

// Budget returns the per-period packet-processing budget (Period ×
// Threshold). Exposed for invariant checking: once Used crosses it the
// limiter must be inhibiting input.
func (l *CycleLimiter) Budget() sim.Duration { return l.budget }

// Inhibited reports whether the limiter currently inhibits input.
func (l *CycleLimiter) Inhibited() bool { return l.gate.Holds(l.source) }
