package core

// Gate aggregates input-inhibition requests from independent sources
// (queue-state feedback, the CPU cycle limiter, diagnostics). Input is
// allowed only while no source holds an inhibition. The kernel consults
// Open from the poller's receive gate and from the interrupt re-enable
// path.
type Gate struct {
	holders map[string]bool
	// OnChange, if set, is invoked when the gate transitions between
	// open and closed.
	OnChange func(open bool)
}

// NewGate returns an open gate.
func NewGate() *Gate {
	return &Gate{holders: make(map[string]bool)}
}

// Open reports whether input processing is currently allowed.
func (g *Gate) Open() bool { return len(g.holders) == 0 }

// Inhibit closes the gate on behalf of source. Repeated inhibition by
// the same source is idempotent.
func (g *Gate) Inhibit(source string) {
	was := g.Open()
	g.holders[source] = true
	if was && g.OnChange != nil {
		g.OnChange(false)
	}
}

// Release removes source's inhibition. Releasing a source that holds no
// inhibition is a no-op.
func (g *Gate) Release(source string) {
	if !g.holders[source] {
		return
	}
	delete(g.holders, source)
	if g.Open() && g.OnChange != nil {
		g.OnChange(true)
	}
}

// Holds reports whether source currently inhibits the gate.
func (g *Gate) Holds(source string) bool { return g.holders[source] }
