// Package core implements the paper's contribution: the livelock-avoiding
// scheduling machinery of §5-7. It is deliberately independent of the
// kernel models that use it.
//
//   - Poller: a kernel-thread polling loop that drivers register with.
//     Interrupts only schedule the poller; callbacks then process packets
//     to completion, round-robin across devices and across the receive
//     and transmit directions, under a per-callback packet quota (§6.4,
//     §6.6.2). When no work remains, the poller re-enables interrupts.
//   - Gate: the input-enable gate, aggregating inhibition requests from
//     independent sources (queue feedback, cycle limiter).
//   - Feedback: queue-state feedback with a re-enable timeout (§6.6.1).
//   - CycleLimiter: the CPU-usage budget that guarantees progress for
//     user-level processes (§7).
package core

import (
	"livelock/internal/cpu"
	"livelock/internal/prov"
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// Step processes one unit of work (one packet, one transmit reclaim).
// Implementations return the CPU cost of the unit and a commit action to
// run once the cost has been consumed, or ok=false if no work is
// pending. This mirrors the cpu package's work-item shape so the poller
// can charge each unit at the right time and remain preemptible between
// units.
type Step func() (cost sim.Duration, commit func(), ok bool)

// Device is a driver's registration with the polling system (§6.4: "At
// boot time, the modified interface drivers register themselves with the
// polling system, providing callback procedures for handling received
// and transmitted packets, and for enabling interrupts").
type Device struct {
	// Name identifies the device in stats and traces.
	Name string
	// Rx processes one received packet to completion.
	Rx Step
	// Tx reclaims one transmit completion (freeing a descriptor) and
	// refills the transmitter.
	Tx Step
	// EnableInterrupts is invoked when the poller has no pending work,
	// so that a subsequent packet event causes an interrupt. The driver
	// decides which directions to enable (it must not re-enable receive
	// interrupts while input is inhibited by feedback or cycle limits).
	EnableInterrupts func()

	// Lock, when non-nil (SMP), serializes each step's commit: the
	// final LockedTail of the step's cost runs as a FairLock critical
	// section and the commit executes at its end. The lock hold is
	// carved out of the step's cost, not added to it, so a single-CPU
	// or uncontended run spends exactly the same cycles per step.
	Lock       *cpu.FairLock
	LockedTail sim.Duration
}

// PollerConfig carries the poller's cost model and quota.
type PollerConfig struct {
	// Quota is the maximum packets a single callback may handle per
	// visit before control returns to the polling loop (§6.6.2).
	// Zero or negative means unlimited — the configuration shown to
	// livelock in figure 6-3.
	Quota int
	// WakeupCost is charged when the poller is scheduled (thread
	// dispatch / context switch).
	WakeupCost sim.Duration
	// RoundCost is charged at the start of each round-robin sweep
	// (checking the registered devices' service-needed flags). Small
	// quotas amortize this less well, which is the §6.6.2 observation
	// that small quotas slightly reduce peak throughput.
	RoundCost sim.Duration
}

// Poller is the polling kernel thread.
type Poller struct {
	eng  *sim.Engine
	task *cpu.Task
	cfg  PollerConfig

	devices []*Device
	rxGate  func(*Device) bool // true → rx processing allowed
	usage   func(sim.Duration) // cycle-accounting hook, may be nil

	scheduled bool
	running   bool

	// Round state.
	devIdx    int
	doingTx   bool
	usedQuota int
	roundWork int
	visitBase sim.Duration // task.Consumed() at start of current visit

	// Rounds counts full round-robin sweeps; Wakeups counts thread
	// scheduling events; RxSteps/TxSteps count work units processed.
	Rounds  *stats.Counter
	Wakeups *stats.Counter
	RxSteps *stats.Counter
	TxSteps *stats.Counter
}

// NewPoller creates the polling thread on c at the given thread priority.
// rxGate, if non-nil, is consulted before each receive step; returning
// false skips receive processing for that device (input inhibited).
func NewPoller(eng *sim.Engine, c *cpu.CPU, prio int, cfg PollerConfig) *Poller {
	// Literal concatenations constant-fold, so the default poller's
	// counter names cost no allocations (routers are built in bulk by
	// figure sweeps, and the uniprocessor path must not pay for SMP).
	return newPoller(eng, c, "poller",
		"poller"+".rounds", "poller"+".wakeups", "poller"+".rx", "poller"+".tx", prio, cfg)
}

// NewNamedPoller is NewPoller with an explicit thread name — SMP
// configurations run one polling thread per core ("poller",
// "poller.1", ...).
func NewNamedPoller(eng *sim.Engine, c *cpu.CPU, name string, prio int, cfg PollerConfig) *Poller {
	return newPoller(eng, c, name,
		name+".rounds", name+".wakeups", name+".rx", name+".tx", prio, cfg)
}

func newPoller(eng *sim.Engine, c *cpu.CPU, name, rounds, wakeups, rx, tx string, prio int, cfg PollerConfig) *Poller {
	p := &Poller{
		eng:     eng,
		cfg:     cfg,
		Rounds:  stats.NewCounter(rounds),
		Wakeups: stats.NewCounter(wakeups),
		RxSteps: stats.NewCounter(rx),
		TxSteps: stats.NewCounter(tx),
	}
	p.task = c.NewTask(name, cpu.IPLThread, prio, cpu.ClassKernel)
	// The thread's own machinery (wakeups, round sweeps) is polling
	// overhead; the packet work its callbacks do is re-attributed per
	// step below.
	p.task.SetCenter(prov.CenterPollOverhead)
	return p
}

// Task exposes the underlying CPU task (for accounting).
func (p *Poller) Task() *cpu.Task { return p.task }

// Register adds a device to the round-robin schedule.
func (p *Poller) Register(d *Device) {
	if d.Rx == nil || d.Tx == nil {
		panic("core: device must provide Rx and Tx steps")
	}
	p.devices = append(p.devices, d)
}

// SetRxGate installs the input-inhibition predicate.
func (p *Poller) SetRxGate(gate func(*Device) bool) { p.rxGate = gate }

// SetUsageHook installs a hook invoked with the CPU time consumed by
// each completed callback visit; the cycle limiter uses this (§7).
func (p *Poller) SetUsageHook(fn func(sim.Duration)) { p.usage = fn }

// Scheduled reports whether the poller is scheduled or running.
func (p *Poller) Scheduled() bool { return p.scheduled }

// QuotaUsed returns the number of work units handled so far in the
// current callback visit; it resets to zero at each visit boundary.
// Exposed for invariant checking: it must never exceed a positive
// configured Quota.
func (p *Poller) QuotaUsed() int { return p.usedQuota }

// Quota returns the configured per-visit packet quota (zero or
// negative means unlimited).
func (p *Poller) Quota() int { return p.cfg.Quota }

// Schedule makes the polling thread runnable, if it is not already. This
// is everything an interrupt handler does in the modified kernel (§6.4:
// "the interrupt handler ... simply schedules the polling thread (if it
// has not already been scheduled) ... and then returns").
func (p *Poller) Schedule() {
	if p.scheduled {
		return
	}
	p.scheduled = true
	p.Wakeups.Inc()
	p.task.Post(p.cfg.WakeupCost, p.beginRound)
}

func (p *Poller) beginRound() {
	p.Rounds.Inc()
	p.devIdx = 0
	p.doingTx = false
	p.usedQuota = 0
	p.roundWork = 0
	p.task.Post(p.cfg.RoundCost, p.step)
}

// rxAllowed applies the gate.
func (p *Poller) rxAllowed(d *Device) bool {
	return p.rxGate == nil || p.rxGate(d)
}

// step runs one scheduling decision of the polling loop: either post the
// next work unit (and come back here when it completes) or advance the
// round-robin cursor.
func (p *Poller) step() {
	for {
		if p.devIdx >= len(p.devices) {
			if p.roundWork > 0 {
				// Work was found this sweep; sweep again before
				// sleeping, since more may have arrived.
				p.beginRound()
			} else {
				p.finish()
			}
			return
		}
		dev := p.devices[p.devIdx]
		var s Step
		var counter *stats.Counter
		if !p.doingTx {
			if p.rxAllowed(dev) {
				s = dev.Rx
				counter = p.RxSteps
			}
		} else {
			s = dev.Tx
			counter = p.TxSteps
		}
		if s != nil && p.quotaLeft() {
			if cost, commit, ok := s(); ok {
				p.roundWork++
				p.usedQuota++
				counter.Inc()
				// Packet work is charged to the direction's cost center,
				// not to poll overhead: receive callbacks do IP input
				// work, transmit callbacks do output-side reclaim.
				center := prov.CenterIPInput
				if p.doingTx {
					center = prov.CenterOutput
				}
				if dev.Lock != nil {
					tail := dev.LockedTail
					if tail > cost {
						tail = cost
					}
					if cost > tail {
						p.task.PostCenter(cost-tail, center, nil)
					}
					p.task.PostLocked(dev.Lock, tail, center, func() {
						if commit != nil {
							commit()
						}
						p.step()
					})
					return
				}
				p.task.PostCenter(cost, center, func() {
					if commit != nil {
						commit()
					}
					p.step()
				})
				return
			}
		}
		p.endVisit()
	}
}

func (p *Poller) quotaLeft() bool {
	return p.cfg.Quota <= 0 || p.usedQuota < p.cfg.Quota
}

// endVisit closes the current (device, direction) callback visit:
// reports its CPU usage and advances the cursor.
func (p *Poller) endVisit() {
	if p.usage != nil {
		consumed := p.task.Consumed()
		if d := consumed - p.visitBase; d > 0 {
			p.usage(d)
		}
		p.visitBase = consumed
	}
	p.usedQuota = 0
	if !p.doingTx {
		p.doingTx = true
	} else {
		p.doingTx = false
		p.devIdx++
	}
}

// finish ends a wakeup: re-enable interrupts on every device and go to
// sleep. If a device immediately re-asserts (packets arrived during the
// final sweep), Schedule is called re-entrantly from EnableInterrupts
// via the driver, and the thread wakes again.
func (p *Poller) finish() {
	p.scheduled = false
	for _, d := range p.devices {
		if d.EnableInterrupts != nil {
			d.EnableInterrupts()
		}
	}
}
