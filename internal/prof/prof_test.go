package prof

import (
	"strings"
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

func TestUsefulWastedSplit(t *testing.T) {
	p := New()

	// Packet 1: 100ns of rx-intr + 200ns of ip-input, delivered.
	h1 := p.Attach(1, 0)
	p.Invest(h1, prov.CenterRxIntr, 100)
	p.Stage(h1, prov.StageIPIntrQEnqueue, 50)
	p.Invest(h1, prov.CenterIPInput, 200)
	p.Deliver(h1, 400)

	// Packet 2: 100ns of rx-intr, dropped at ipintrq.
	h2 := p.Attach(2, 10)
	p.Invest(h2, prov.CenterRxIntr, 100)
	p.Drop(h2, prov.ReasonIPIntrQFull, 120)

	if got := p.UsefulCycles(); got != 300 {
		t.Fatalf("useful = %v, want 300", got)
	}
	if got := p.WastedCycles(); got != 100 {
		t.Fatalf("wasted = %v, want 100", got)
	}
	if got := p.WastedByCenter(prov.CenterRxIntr); got != 100 {
		t.Fatalf("wasted rx-intr = %v, want 100", got)
	}
	if got := p.UsefulByCenter(prov.CenterIPInput); got != 200 {
		t.Fatalf("useful ip-input = %v, want 200", got)
	}
	if got := p.WastedFrac(); got != 0.25 {
		t.Fatalf("wasted frac = %v, want 0.25", got)
	}
	if got := p.DropCount(prov.ReasonIPIntrQFull); got != 1 {
		t.Fatalf("drop count = %d, want 1", got)
	}
	if got := p.DropInvested(prov.ReasonIPIntrQFull); got != 100 {
		t.Fatalf("drop invested = %v, want 100", got)
	}
	if p.Live() != 0 {
		t.Fatalf("live = %d, want 0", p.Live())
	}
}

// Stale and zero handles must be inert: the slot is reused for another
// packet and old handles must not corrupt its ledger.
func TestStaleHandleNoOp(t *testing.T) {
	p := New()
	h := p.Attach(1, 0)
	p.Invest(h, prov.CenterRxIntr, 50)
	p.Drop(h, prov.ReasonOutQFull, 10)

	// Same slot, new generation.
	p.Invest(h, prov.CenterRxIntr, 999)
	p.Deliver(h, 20)
	p.Drop(h, prov.ReasonOutQFull, 20)
	var zero prov.Handle
	p.Invest(zero, prov.CenterRxIntr, 999)
	p.Deliver(zero, 20)

	if got := p.WastedCycles(); got != 50 {
		t.Fatalf("wasted = %v, want 50 (stale ops leaked)", got)
	}
	if got := p.UsefulCycles(); got != 0 {
		t.Fatalf("useful = %v, want 0 (stale ops leaked)", got)
	}
	if got := p.DropCount(prov.ReasonOutQFull); got != 1 {
		t.Fatalf("drop count = %d, want 1", got)
	}
}

func TestPoolGrowsAndRecycles(t *testing.T) {
	p := New()
	handles := make([]prov.Handle, 0, initialRecords*2+5)
	for i := 0; i < initialRecords*2+5; i++ {
		handles = append(handles, p.Attach(uint64(i), 0))
	}
	if p.Live() != len(handles) {
		t.Fatalf("live = %d, want %d", p.Live(), len(handles))
	}
	for _, h := range handles {
		p.Deliver(h, 100)
	}
	if p.Live() != 0 {
		t.Fatalf("live = %d after delivering all", p.Live())
	}
	// Recycled slots still work.
	h := p.Attach(99, 200)
	p.Invest(h, prov.CenterScreend, 7)
	p.Drop(h, prov.ReasonScreendReject, 210)
	if got := p.WastedByCenter(prov.CenterScreend); got != 7 {
		t.Fatalf("recycled slot wasted = %v, want 7", got)
	}
}

func TestDwellHistograms(t *testing.T) {
	p := New()
	h := p.Attach(1, 100)
	p.Stage(h, prov.StageIPIntrQEnqueue, 160) // 60ns in rx-ring-accept
	p.Stage(h, prov.StageSoftIPInput, 460)    // 300ns in ipintrq
	p.Deliver(h, 480)                         // 20ns in softint

	if got := p.Dwell(prov.StageRxRingAccept).Count(); got != 1 {
		t.Fatalf("rx-ring-accept dwell count = %d", got)
	}
	if got := p.Dwell(prov.StageIPIntrQEnqueue).Max(); got != 300 {
		t.Fatalf("ipintrq dwell max = %v, want 300", got)
	}
	if got := p.Dwell(prov.StageSoftIPInput).Count(); got != 1 {
		t.Fatalf("softint dwell count = %d", got)
	}
}

func TestDetectorEntersAndExits(t *testing.T) {
	p := New()
	var stream []Diagnosis
	p.SetOnDiagnosis(func(d Diagnosis) { stream = append(stream, d) })

	now := sim.Time(0)
	tick := func(delivered uint64, wasteEach sim.Duration) {
		now = now.Add(sim.Millisecond)
		if wasteEach > 0 {
			h := p.Attach(uint64(now), now)
			p.Invest(h, prov.CenterRxIntr, wasteEach)
			p.Drop(h, prov.ReasonIPIntrQFull, now)
		}
		p.Tick(now, delivered)
	}

	// Healthy phase: deliveries progress.
	tick(0, 0) // baseline
	for i := uint64(1); i <= 5; i++ {
		tick(i, 50)
	}
	if p.Livelocked() {
		t.Fatal("livelocked during healthy phase")
	}
	// Livelock phase: waste accumulates, output frozen.
	for i := 0; i < livelockStreak-1; i++ {
		tick(5, 50)
	}
	if p.Livelocked() {
		t.Fatal("declared livelock one tick early")
	}
	tick(5, 50)
	if !p.Livelocked() {
		t.Fatal("did not declare livelock after streak")
	}
	// Recovery: one delivery clears it.
	tick(6, 0)
	if p.Livelocked() {
		t.Fatal("did not clear livelock on delivery")
	}

	if len(stream) != 2 || !stream[0].Livelocked || stream[1].Livelocked {
		t.Fatalf("diagnosis stream = %v", stream)
	}
	if stream[0].Starved != sim.Duration(livelockStreak-1)*sim.Millisecond {
		t.Fatalf("entry starved = %v", stream[0].Starved)
	}
	if got := p.DiagnosisTotal(); got != 2 {
		t.Fatalf("diagnosis total = %d", got)
	}
	if len(p.Diagnoses()) != 2 {
		t.Fatalf("retained diagnoses = %d", len(p.Diagnoses()))
	}
}

// Idle periods (no waste, no deliveries) must not count toward the
// livelock streak.
func TestDetectorIgnoresIdle(t *testing.T) {
	p := New()
	now := sim.Time(0)
	for i := 0; i < livelockStreak*3; i++ {
		now = now.Add(sim.Millisecond)
		p.Tick(now, 0)
	}
	if p.Livelocked() {
		t.Fatal("idle run diagnosed as livelock")
	}
}

func TestWriteFoldedAndTables(t *testing.T) {
	p := New()
	h := p.Attach(1, 0)
	p.Invest(h, prov.CenterRxIntr, 5*sim.Microsecond)
	p.Deliver(h, 100)
	h = p.Attach(2, 0)
	p.Invest(h, prov.CenterRxIntr, 3*sim.Microsecond)
	p.Drop(h, prov.ReasonIPIntrQFull, 200)
	p.DropUntracked(prov.ReasonRxRingFull)

	var folded strings.Builder
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	out := folded.String()
	for _, want := range []string{
		"pkt;useful;rx-intr 5\n",
		"pkt;wasted;rx-intr 3\n",
		"drop;ipintrq-full 3\n",
		"drop;rx-ring-full 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("folded output missing %q:\n%s", want, out)
		}
	}

	var table strings.Builder
	if err := p.WriteDropTable(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "ipintrq-full") || !strings.Contains(table.String(), "rx-ring-full") {
		t.Fatalf("drop table:\n%s", table.String())
	}
	// ipintrq-full invested more, so it must rank first.
	if strings.Index(table.String(), "ipintrq-full") > strings.Index(table.String(), "rx-ring-full") {
		t.Fatalf("drop table not ranked by invested cycles:\n%s", table.String())
	}
}

func TestResetStats(t *testing.T) {
	p := New()
	h := p.Attach(1, 0)
	p.Invest(h, prov.CenterRxIntr, 40)
	p.Drop(h, prov.ReasonOutQFull, 10)
	// In-flight across the reset boundary.
	inflight := p.Attach(2, 20)
	p.Invest(inflight, prov.CenterRxIntr, 10)

	p.ResetStats()
	if p.WastedCycles() != 0 || p.DropCount(prov.ReasonOutQFull) != 0 {
		t.Fatal("ResetStats left ledger entries")
	}
	if p.Live() != 1 {
		t.Fatalf("live = %d, want 1", p.Live())
	}
	p.Invest(inflight, prov.CenterIPInput, 30)
	p.Deliver(inflight, 50)
	if got := p.UsefulCycles(); got != 40 {
		t.Fatalf("useful after reset = %v, want 40 (pre-reset investment kept)", got)
	}
}
