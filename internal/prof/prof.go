// Package prof is the cycle-attribution profiler: it joins the CPU
// model's per-center cycle ledger with per-packet provenance records to
// answer the paper's central question — how much of the CPU went to
// packets that were later discarded (§3, §6.1)?
//
// Every tracked packet carries a prov.Handle naming a pooled,
// generation-checked record. The kernel invests cycles into the record
// as it works on the packet (rx interrupt, ip_input, screend, ...) and
// finalizes it exactly once: Deliver moves the invested cycles to the
// useful ledger, Drop moves them to the wasted ledger and the
// drop-provenance table (which reason killed it, after how many invested
// cycles). The headline WastedFrac is wasted/(useful+wasted).
//
// The layer is strictly observational: it never posts work, never
// touches the event engine, and all hot-path operations (Attach, Stage,
// Invest, Drop, Deliver, Tick) are allocation-free once the record pool
// has grown to the working set, so enabling it cannot perturb the
// simulated schedule.
package prof

import (
	"fmt"
	"io"
	"sort"

	"livelock/internal/prov"
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// record is one in-flight packet's provenance. Slots are pooled and
// generation-checked exactly like the sim package's event handles: a
// stale handle (the packet was already finalized and the slot reused)
// makes every operation a no-op instead of corrupting another packet's
// ledger.
type record struct {
	gen      uint32
	live     bool
	id       uint64
	stage    prov.Stage
	stagedAt sim.Time
	invested [prov.NumCenters]sim.Duration
	total    sim.Duration
}

// dropRow is one row of the drop-provenance table.
type dropRow struct {
	Count    uint64
	Invested sim.Duration
}

const initialRecords = 1024

// Profile accumulates cycle attribution for one run. It is not safe for
// concurrent use; each trial owns its own Profile (the parallel trial
// executor injects a fresh one per trial).
type Profile struct {
	records  []record
	freeList []int32
	liveN    int

	useful [prov.NumCenters]sim.Duration
	wasted [prov.NumCenters]sim.Duration
	drops  [prov.NumReasons]dropRow

	dwell [prov.NumStages]*stats.Histogram

	det detector
}

// New returns an empty profile with a preallocated record pool.
func New() *Profile {
	p := &Profile{
		records:  make([]record, initialRecords),
		freeList: make([]int32, initialRecords),
	}
	for i := range p.records {
		p.records[i].gen = 1
		// Hand out low indices first so short runs stay cache-compact.
		p.freeList[i] = int32(len(p.records) - 1 - i)
	}
	for s := range p.dwell {
		p.dwell[s] = stats.NewHistogram("dwell." + prov.Stage(s).Slug())
	}
	p.det.init()
	return p
}

// Attach begins tracking a packet and returns its handle. Called when
// the NIC accepts the frame into its rx ring — everything upstream
// (wire faults, full-ring discards) costs no CPU and is recorded via
// DropUntracked instead.
func (p *Profile) Attach(id uint64, now sim.Time) prov.Handle {
	if len(p.freeList) == 0 {
		p.grow()
	}
	idx := p.freeList[len(p.freeList)-1]
	p.freeList = p.freeList[:len(p.freeList)-1]
	r := &p.records[idx]
	r.live = true
	r.id = id
	r.stage = prov.StageRxRingAccept
	r.stagedAt = now
	for c := range r.invested {
		r.invested[c] = 0
	}
	r.total = 0
	p.liveN++
	return prov.Handle{Idx: idx, Gen: r.gen}
}

func (p *Profile) grow() {
	old := len(p.records)
	next := make([]record, old*2)
	copy(next, p.records)
	p.records = next
	for i := len(p.records) - 1; i >= old; i-- {
		p.records[i].gen = 1
		p.freeList = append(p.freeList, int32(i))
	}
}

func (p *Profile) get(h prov.Handle) *record {
	if h.Zero() || int(h.Idx) >= len(p.records) {
		return nil
	}
	r := &p.records[h.Idx]
	if !r.live || r.gen != h.Gen {
		return nil
	}
	return r
}

// Stage records that the packet reached a new lifecycle stage, closing
// the dwell interval of the previous stage into that stage's histogram.
func (p *Profile) Stage(h prov.Handle, stage prov.Stage, now sim.Time) {
	r := p.get(h)
	if r == nil {
		return
	}
	p.dwell[r.stage].Observe(now.Sub(r.stagedAt))
	r.stage = stage
	r.stagedAt = now
}

// Invest charges d cycles of work on this packet to the given center.
// The caller charges the same cycles to the CPU model; Invest only
// remembers, per packet, where they went so a later Drop can classify
// them as wasted.
func (p *Profile) Invest(h prov.Handle, center prov.Center, d sim.Duration) {
	r := p.get(h)
	if r == nil {
		return
	}
	r.invested[center] += d
	r.total += d
}

// Drop finalizes the packet as discarded: its invested cycles move to
// the wasted ledger and the drop-provenance table, and its record slot
// is freed. Subsequent operations on the handle are no-ops.
func (p *Profile) Drop(h prov.Handle, reason prov.DropReason, now sim.Time) {
	r := p.get(h)
	if r == nil {
		return
	}
	p.dwell[r.stage].Observe(now.Sub(r.stagedAt))
	p.drops[reason].Count++
	p.drops[reason].Invested += r.total
	for c, d := range r.invested {
		p.wasted[c] += d
	}
	p.det.wastedNow += r.total
	p.free(h.Idx, r)
}

// Deliver finalizes the packet as useful: its invested cycles move to
// the useful ledger and its record slot is freed.
func (p *Profile) Deliver(h prov.Handle, now sim.Time) {
	r := p.get(h)
	if r == nil {
		return
	}
	p.dwell[r.stage].Observe(now.Sub(r.stagedAt))
	for c, d := range r.invested {
		p.useful[c] += d
	}
	p.free(h.Idx, r)
}

func (p *Profile) free(idx int32, r *record) {
	r.live = false
	r.gen++
	if r.gen == 0 { // wrapped: keep zero meaning "never attached"
		r.gen = 1
	}
	p.freeList = append(p.freeList, idx)
	p.liveN--
}

// DropUntracked records a drop that consumed no CPU and so has no
// provenance record: wire faults, full-ring hardware discards, stall
// and reset losses.
func (p *Profile) DropUntracked(reason prov.DropReason) {
	p.drops[reason].Count++
}

// Live returns the number of in-flight records.
func (p *Profile) Live() int { return p.liveN }

// UsefulCycles returns total cycles invested in delivered packets.
func (p *Profile) UsefulCycles() sim.Duration {
	var t sim.Duration
	for _, d := range p.useful {
		t += d
	}
	return t
}

// WastedCycles returns total cycles invested in dropped packets.
func (p *Profile) WastedCycles() sim.Duration {
	var t sim.Duration
	for _, d := range p.wasted {
		t += d
	}
	return t
}

// UsefulByCenter returns cycles invested via center c in delivered packets.
func (p *Profile) UsefulByCenter(c prov.Center) sim.Duration { return p.useful[c] }

// WastedByCenter returns cycles invested via center c in dropped packets.
func (p *Profile) WastedByCenter(c prov.Center) sim.Duration { return p.wasted[c] }

// WastedFrac returns wasted/(useful+wasted), the headline wasted-work
// fraction. With no finalized work it returns 0.
func (p *Profile) WastedFrac() float64 {
	u, w := p.UsefulCycles(), p.WastedCycles()
	if u+w == 0 {
		return 0
	}
	return float64(w) / float64(u+w)
}

// DropCount returns the number of drops recorded for reason.
func (p *Profile) DropCount(reason prov.DropReason) uint64 { return p.drops[reason].Count }

// DropInvested returns the cycles that had been invested in packets
// dropped for reason — the cost of each "foolish" drop point.
func (p *Profile) DropInvested(reason prov.DropReason) sim.Duration {
	return p.drops[reason].Invested
}

// Dwell returns the per-stage dwell histogram: how long packets sat in
// stage before moving on (or dying).
func (p *Profile) Dwell(stage prov.Stage) *stats.Histogram { return p.dwell[stage] }

// ResetStats zeroes the accumulated ledgers, the drop table, the dwell
// histograms, and the detector baseline, keeping in-flight records (and
// their invested-so-far cycles) alive. Trial harnesses call it at the
// end of warmup so the reported fractions cover only the measurement
// window.
func (p *Profile) ResetStats() {
	for c := range p.useful {
		p.useful[c] = 0
		p.wasted[c] = 0
	}
	for r := range p.drops {
		p.drops[r] = dropRow{}
	}
	for _, h := range p.dwell {
		h.Reset()
	}
	p.det.resetStats()
}

// WriteFolded emits the packet-provenance half of the folded-stack
// output (one "frames value" line per sample, flamegraph-ready):
// pkt;useful;<center> and pkt;wasted;<center> weighted by microseconds,
// and drop;<reason> weighted by invested microseconds.
func (p *Profile) WriteFolded(w io.Writer) error {
	for c := prov.Center(0); c < prov.NumCenters; c++ {
		if us := p.useful[c] / sim.Microsecond; us > 0 {
			if _, err := fmt.Fprintf(w, "pkt;useful;%s %d\n", c, us); err != nil {
				return err
			}
		}
	}
	for c := prov.Center(0); c < prov.NumCenters; c++ {
		if us := p.wasted[c] / sim.Microsecond; us > 0 {
			if _, err := fmt.Fprintf(w, "pkt;wasted;%s %d\n", c, us); err != nil {
				return err
			}
		}
	}
	for d := prov.DropReason(1); d < prov.NumReasons; d++ {
		if p.drops[d].Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "drop;%s %d\n", d, p.drops[d].Invested/sim.Microsecond); err != nil {
			return err
		}
	}
	return nil
}

// WriteDropTable renders the drop-provenance table: which mechanism
// killed packets, how many, and how many cycles had already been sunk
// into them. Rows are ordered by invested cycles (the §6.3 ranking:
// which drop point wastes the most work), then by count.
func (p *Profile) WriteDropTable(w io.Writer) error {
	type row struct {
		reason prov.DropReason
		dropRow
	}
	var rows []row
	for d := prov.DropReason(1); d < prov.NumReasons; d++ {
		if p.drops[d].Count > 0 {
			rows = append(rows, row{d, p.drops[d]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Invested != rows[j].Invested {
			return rows[i].Invested > rows[j].Invested
		}
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].reason < rows[j].reason
	})
	if _, err := fmt.Fprintf(w, "%-16s %10s %14s %14s\n", "drop reason", "count", "invested", "per packet"); err != nil {
		return err
	}
	for _, r := range rows {
		per := sim.Duration(0)
		if r.Count > 0 {
			per = r.Invested / sim.Duration(r.Count)
		}
		if _, err := fmt.Fprintf(w, "%-16s %10d %14v %14v\n", r.reason, r.Count, r.Invested, per); err != nil {
			return err
		}
	}
	return nil
}

// WriteDwell renders the non-empty per-stage dwell histograms as
// one-line summaries, in stage order.
func (p *Profile) WriteDwell(w io.Writer) error {
	for s := prov.Stage(0); s < prov.NumStages; s++ {
		h := p.dwell[s]
		if h.Count() == 0 {
			continue
		}
		if _, err := fmt.Fprintln(w, h); err != nil {
			return err
		}
	}
	return nil
}
