package prof

import (
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

// The profiler rides the packet fast path: every tracked frame incurs
// an Attach, several Stage/Invest calls, and one finalize. Once the
// record pool covers the working set, the whole lifecycle — and the
// detector tick — must not allocate, or enabling the profiler would
// perturb what it measures.
func TestAllocsLifecycle(t *testing.T) {
	p := New()
	var now sim.Time
	var delivered uint64
	allocs := testing.AllocsPerRun(1000, func() {
		now = now.Add(sim.Millisecond)
		h := p.Attach(1, now)
		p.Invest(h, prov.CenterRxIntr, 60)
		p.Stage(h, prov.StageIPIntrQEnqueue, now.Add(100))
		p.Invest(h, prov.CenterIPInput, 90)
		p.Deliver(h, now.Add(300))

		h = p.Attach(2, now)
		p.Invest(h, prov.CenterRxIntr, 60)
		p.Drop(h, prov.ReasonIPIntrQFull, now.Add(120))
		p.DropUntracked(prov.ReasonRxRingFull)

		delivered++
		p.Tick(now, delivered)
	})
	if allocs != 0 {
		t.Fatalf("profiler lifecycle allocates %v objects, want 0", allocs)
	}
}
