package prof

import (
	"fmt"
	"io"

	"livelock/internal/sim"
)

// Diagnosis is one event in the online livelock detector's output
// stream: the detector entered (Livelocked=true) or left
// (Livelocked=false) the livelock state.
type Diagnosis struct {
	At sim.Time
	// Livelocked is the state being entered at At.
	Livelocked bool
	// Delivered is the cumulative delivered-packet count at At.
	Delivered uint64
	// WastedFrac is the profile's wasted-work fraction at At.
	WastedFrac float64
	// Starved is how long output progress had been absent when the
	// state was entered (entry events) or how long the livelocked
	// episode lasted (exit events).
	Starved sim.Duration
}

func (d Diagnosis) String() string {
	state := "livelock CLEARED"
	if d.Livelocked {
		state = "LIVELOCK"
	}
	return fmt.Sprintf("%12v  %s: delivered=%d wasted-frac=%.3f starved=%v",
		d.At, state, d.Delivered, d.WastedFrac, d.Starved)
}

// livelockStreak is how many consecutive detector ticks must show
// wasted work accumulating with zero output progress before the
// detector declares livelock. At the kernel's 1ms tick that is 10ms of
// pure waste — far beyond any transient queue oscillation the
// simulation produces, and far quicker than eyeballing a throughput
// graph.
const livelockStreak = 10

// maxDiagnoses bounds the retained diagnosis stream. A run that
// oscillates in and out of livelock more than this keeps counting
// events (DiagnosisTotal) but stops retaining them — the detector must
// never allocate on the hot path.
const maxDiagnoses = 64

// detector watches output progress against wasted-work accumulation.
// Livelock has a precise signature here: the wasted ledger grows while
// the delivered count does not move. Either signal alone is ambiguous —
// zero deliveries is normal when idle, and wasted cycles are normal
// while output still progresses.
type detector struct {
	lastDelivered uint64
	wastedNow     sim.Duration // running wasted total, updated by Drop
	lastWasted    sim.Duration
	streak        int
	streakStart   sim.Time
	lockedSince   sim.Time
	locked        bool
	ticked        bool

	diags []Diagnosis
	total uint64

	// OnDiagnosis, if set, observes each diagnosis as it is emitted
	// (including ones beyond the retention bound).
	OnDiagnosis func(Diagnosis)
}

func (d *detector) init() {
	d.diags = make([]Diagnosis, 0, maxDiagnoses)
}

func (d *detector) resetStats() {
	// Keep the delivered/wasted baselines: they are cumulative counters
	// owned by the caller and the profile respectively, and the next
	// tick re-baselines deltas anyway. Only the episode bookkeeping and
	// retained stream reset.
	d.streak = 0
	d.locked = false
	d.ticked = false
	d.diags = d.diags[:0]
	d.total = 0
}

// Tick advances the online livelock detector; the kernel calls it from
// hardclock (every clock tick) with the cumulative delivered-packet
// count. It is allocation-free.
func (p *Profile) Tick(now sim.Time, delivered uint64) {
	d := &p.det
	if !d.ticked {
		// First tick establishes the baseline; no deltas yet.
		d.ticked = true
		d.lastDelivered = delivered
		d.lastWasted = d.wastedNow
		return
	}
	deliveredDelta := delivered - d.lastDelivered
	wastedDelta := d.wastedNow - d.lastWasted
	d.lastDelivered = delivered
	d.lastWasted = d.wastedNow

	if deliveredDelta > 0 {
		if d.locked {
			d.locked = false
			p.emitDiagnosis(Diagnosis{
				At:         now,
				Livelocked: false,
				Delivered:  delivered,
				WastedFrac: p.WastedFrac(),
				Starved:    now.Sub(d.lockedSince),
			})
		}
		d.streak = 0
		return
	}
	if wastedDelta <= 0 {
		// No output progress but no waste either: the system is idle or
		// quiescing, not livelocked.
		d.streak = 0
		return
	}
	if d.streak == 0 {
		d.streakStart = now
	}
	d.streak++
	if d.streak == livelockStreak && !d.locked {
		d.locked = true
		d.lockedSince = now
		p.emitDiagnosis(Diagnosis{
			At:         now,
			Livelocked: true,
			Delivered:  delivered,
			WastedFrac: p.WastedFrac(),
			Starved:    now.Sub(d.streakStart),
		})
	}
}

func (p *Profile) emitDiagnosis(diag Diagnosis) {
	d := &p.det
	d.total++
	if len(d.diags) < cap(d.diags) {
		d.diags = append(d.diags, diag)
	}
	if d.OnDiagnosis != nil {
		d.OnDiagnosis(diag)
	}
}

// Livelocked reports whether the detector currently diagnoses receive
// livelock: wasted work accumulating with no output progress.
func (p *Profile) Livelocked() bool { return p.det.locked }

// Diagnoses returns the retained diagnosis events, oldest first.
func (p *Profile) Diagnoses() []Diagnosis { return p.det.diags }

// DiagnosisTotal returns the number of diagnosis events emitted,
// including any beyond the retention bound.
func (p *Profile) DiagnosisTotal() uint64 { return p.det.total }

// SetOnDiagnosis installs a sink observing each diagnosis as emitted.
func (p *Profile) SetOnDiagnosis(fn func(Diagnosis)) { p.det.OnDiagnosis = fn }

// WriteDiagnoses renders the retained diagnosis stream.
func (p *Profile) WriteDiagnoses(w io.Writer) error {
	for _, d := range p.det.diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}
