// Package plot renders scatter plots as text, in the spirit of the
// paper's figures: one mark glyph per series, auto-scaled axes, a
// legend. It exists so `lkfigures -plot` can show the reproduced curves
// directly in a terminal.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) mark.
type Point struct {
	X, Y float64
}

// Series is one curve: a label, a mark glyph, and its points.
type Series struct {
	Label string
	Glyph rune
	Marks []Point
}

// DefaultGlyphs are assigned to series without an explicit glyph,
// echoing the paper's filled circles, open squares, diamonds, etc.
var DefaultGlyphs = []rune{'o', '#', '+', 'x', '*', '@', '%'}

// Scatter is a text scatter plot.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (default 72×24).
	Width, Height int
	// YMax forces the y-axis maximum; zero auto-scales.
	YMax float64
	// XMax forces the x-axis maximum; zero auto-scales.
	XMax float64

	Series []Series
}

// Add appends a series, assigning a default glyph if none is set.
func (s *Scatter) Add(label string, pts []Point) {
	glyph := DefaultGlyphs[len(s.Series)%len(DefaultGlyphs)]
	s.Series = append(s.Series, Series{Label: label, Glyph: glyph, Marks: pts})
}

func (s *Scatter) bounds() (xmax, ymax float64) {
	xmax, ymax = s.XMax, s.YMax
	for _, series := range s.Series {
		for _, p := range series.Marks {
			if s.XMax == 0 && p.X > xmax {
				xmax = p.X
			}
			if s.YMax == 0 && p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	if xmax <= 0 {
		xmax = 1
	}
	if ymax <= 0 {
		ymax = 1
	}
	// Round the y maximum up to a tidy value so axis labels read well.
	ymax = niceCeil(ymax)
	xmax = niceCeil(xmax)
	return xmax, ymax
}

// niceCeil rounds v up to a tidy multiple of a power of ten.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// Render draws the plot.
func (s *Scatter) Render() string {
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 24
	}
	xmax, ymax := s.bounds()

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, series := range s.Series {
		for _, p := range series.Marks {
			col := int(math.Round(p.X / xmax * float64(width-1)))
			row := int(math.Round(p.Y / ymax * float64(height-1)))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			r := height - 1 - row
			if grid[r][col] != ' ' && grid[r][col] != series.Glyph {
				grid[r][col] = '&' // overlapping series
			} else {
				grid[r][col] = series.Glyph
			}
		}
	}

	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	if s.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", s.YLabel)
	}
	const margin = 9
	for i, row := range grid {
		// Y-axis labels at the top, middle and bottom lines.
		label := strings.Repeat(" ", margin-2)
		switch i {
		case 0:
			label = fmt.Sprintf("%*.0f", margin-2, ymax)
		case (height - 1) / 2:
			mid := ymax * float64(height-1-i) / float64(height-1)
			label = fmt.Sprintf("%*.0f", margin-2, mid)
		case height - 1:
			label = fmt.Sprintf("%*.0f", margin-2, 0.0)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin-2), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s0%s%.0f\n", strings.Repeat(" ", margin),
		strings.Repeat(" ", width-len(fmt.Sprintf("%.0f", xmax))-1), xmax)
	if s.XLabel != "" {
		pad := (margin + width - len(s.XLabel)) / 2
		if pad < 0 {
			pad = 0
		}
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat(" ", pad), s.XLabel)
	}
	for _, series := range s.Series {
		fmt.Fprintf(&b, "  %c  %s\n", series.Glyph, series.Label)
	}
	return b.String()
}
