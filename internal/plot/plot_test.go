package plot

import (
	"strings"
	"testing"
)

func TestNiceCeil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {1.1, 1.2}, {2.4, 2.5}, {3, 3}, {7, 8},
		{4700, 5000}, {12000, 12000}, {9999, 10000}, {100, 100},
	}
	for _, c := range cases {
		if got := niceCeil(c.in); got != c.want {
			t.Errorf("niceCeil(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if niceCeil(0) != 1 || niceCeil(-5) != 1 {
		t.Error("niceCeil of non-positive should be 1")
	}
}

func TestScatterRenderBasics(t *testing.T) {
	s := &Scatter{
		Title:  "Figure X",
		XLabel: "input",
		YLabel: "output",
		Width:  40, Height: 10,
	}
	s.Add("lineA", []Point{{0, 0}, {5000, 2500}, {10000, 5000}})
	s.Add("lineB", []Point{{0, 5000}, {10000, 5000}})
	out := s.Render()
	for _, want := range []string{"Figure X", "input", "output", "lineA", "lineB", "o", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The axis maximum must appear as a label.
	if !strings.Contains(out, "5000") {
		t.Fatalf("y max label missing:\n%s", out)
	}
}

func TestScatterMarksLand(t *testing.T) {
	s := &Scatter{Width: 21, Height: 11, XMax: 100, YMax: 100}
	s.Add("pts", []Point{{0, 0}, {100, 100}, {50, 50}})
	out := s.Render()
	lines := strings.Split(out, "\n")
	// Row 0 of the grid is y=100: glyph at the far right.
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l[strings.Index(l, "|")+1:])
		}
	}
	if len(gridLines) != 11 {
		t.Fatalf("grid has %d rows", len(gridLines))
	}
	if gridLines[0][20] != 'o' {
		t.Fatalf("(100,100) not at top right:\n%s", out)
	}
	if gridLines[10][0] != 'o' {
		t.Fatalf("(0,0) not at bottom left:\n%s", out)
	}
	if gridLines[5][10] != 'o' {
		t.Fatalf("(50,50) not at centre:\n%s", out)
	}
}

func TestScatterOverlapGlyph(t *testing.T) {
	s := &Scatter{Width: 11, Height: 5, XMax: 10, YMax: 10}
	s.Add("a", []Point{{5, 5}})
	s.Add("b", []Point{{5, 5}})
	out := s.Render()
	if !strings.Contains(out, "&") {
		t.Fatalf("overlapping marks not flagged:\n%s", out)
	}
}

func TestScatterEmptySeries(t *testing.T) {
	s := &Scatter{}
	s.Add("empty", nil)
	if out := s.Render(); out == "" {
		t.Fatal("empty render")
	}
}

func TestScatterOutOfRangeClipped(t *testing.T) {
	s := &Scatter{Width: 11, Height: 5, XMax: 10, YMax: 10}
	s.Add("a", []Point{{50, 50}, {-1, -1}, {5, 5}})
	out := s.Render() // must not panic; in-range point still drawn
	if !strings.Contains(out, "o") {
		t.Fatalf("in-range point missing:\n%s", out)
	}
}
