package queue

import (
	"testing"

	"livelock/internal/netstack"
	"livelock/internal/sim"
)

func newRED(capacity int, p REDParams) (*RED, *sim.Time) {
	var now sim.Time
	return NewRED("red", capacity, func() sim.Time { return now }, sim.NewRNG(1), p), &now
}

func TestREDNeverDropsBelowMinTh(t *testing.T) {
	p := REDParams{MinTh: 10, MaxTh: 20, MaxP: 0.5, Wq: 0.5, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 1000; i++ {
		*now += sim.Time(100 * sim.Microsecond)
		if !q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			t.Fatalf("drop at iteration %d with avg %.2f below MinTh", i, q.Avg())
		}
		if q.Dequeue() == nil {
			t.Fatal("dequeue failed")
		}
	}
	if q.EarlyDrops.Value() != 0 {
		t.Fatalf("EarlyDrops = %d with queue never above MinTh", q.EarlyDrops.Value())
	}
}

func TestREDAlwaysDropsAboveMaxTh(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 6, MaxP: 0.5, Wq: 1, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(32, p)
	// Fill without draining: with Wq=1 the average tracks the
	// instantaneous length exactly.
	accepted := 0
	for i := 0; i < 30; i++ {
		*now += sim.Time(10 * sim.Microsecond)
		if q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			accepted++
		}
	}
	// Once length (= avg) reaches MaxTh, every arrival is dropped.
	if q.Len() > int(p.MaxTh)+1 {
		t.Fatalf("queue grew to %d, above MaxTh %v", q.Len(), p.MaxTh)
	}
	if q.EarlyDrops.Value() == 0 {
		t.Fatal("no early drops above MaxTh")
	}
}

func TestREDProbabilisticRegionDropsSome(t *testing.T) {
	p := REDParams{MinTh: 4, MaxTh: 100, MaxP: 0.3, Wq: 1, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(256, p)
	accepted, dropped := 0, 0
	// Hold occupancy around 10 (between thresholds) and offer many
	// arrivals.
	for i := 0; i < 2000; i++ {
		*now += sim.Time(10 * sim.Microsecond)
		if q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			accepted++
		} else {
			dropped++
		}
		if q.Len() > 10 {
			q.Dequeue()
		}
	}
	if dropped == 0 {
		t.Fatal("no probabilistic drops between thresholds")
	}
	if accepted == 0 {
		t.Fatal("everything dropped between thresholds")
	}
	frac := float64(dropped) / float64(accepted+dropped)
	if frac > 0.5 {
		t.Fatalf("drop fraction %.2f too aggressive for this region", frac)
	}
}

func TestREDIdleAgingDecaysAverage(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 8, MaxP: 0.5, Wq: 0.5, MeanPktTime: 100 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 8; i++ {
		q.Enqueue(&netstack.Packet{ID: uint64(i)})
	}
	for q.Dequeue() != nil {
	}
	highAvg := q.Avg()
	// A long idle period must decay the average toward zero.
	*now += sim.Time(100 * sim.Millisecond)
	q.Enqueue(&netstack.Packet{ID: 99})
	if q.Avg() >= highAvg/2 {
		t.Fatalf("avg %.3f did not decay from %.3f across idle period", q.Avg(), highAvg)
	}
}

// TestREDIdleDecayMatchesFloydJacobson pins the idle-aging formula
// exactly: an arrival to an empty queue after idle time i must scale
// avg by (1-Wq)^(i/MeanPktTime) and apply *no* sample step — the old
// code tacked an unconditional EWMA step toward zero on top, so the
// average after idle was (1-Wq)^(m+1)·avg instead of (1-Wq)^m·avg.
func TestREDIdleDecayMatchesFloydJacobson(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 8, MaxP: 0.5, Wq: 0.25, MeanPktTime: 100 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 8; i++ {
		q.Enqueue(&netstack.Packet{ID: uint64(i)})
	}
	for q.Dequeue() != nil {
	}
	avg0 := q.Avg()
	if avg0 <= 0 {
		t.Fatalf("setup: avg = %v, want > 0", avg0)
	}
	// Idle exactly 4 mean packet times, then one arrival: the admission
	// test must see avg0·(1-Wq)^4, nothing more.
	*now += sim.Time(4 * 100 * sim.Microsecond)
	q.Enqueue(&netstack.Packet{ID: 99})
	want := avg0 * 0.75 * 0.75 * 0.75 * 0.75
	if got := q.Avg(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("avg after 4 idle packet-times = %v, want %v (= avg0·(1-Wq)^4)", got, want)
	}
}

// TestREDFlushStartsIdlePeriod: a Flush must begin an idle period, so
// the average decays across the following gap. Before the fix the
// flush left the idle-start flag stale and the average froze at its
// last-enqueue value indefinitely.
func TestREDFlushStartsIdlePeriod(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 8, MaxP: 0.5, Wq: 0.5, MeanPktTime: 100 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 8; i++ {
		q.Enqueue(&netstack.Packet{ID: uint64(i)})
	}
	highAvg := q.Avg()
	if n := q.Flush(); n == 0 {
		t.Fatal("Flush discarded nothing")
	}
	*now += sim.Time(100 * sim.Millisecond)
	q.Enqueue(&netstack.Packet{ID: 99})
	if q.Avg() >= highAvg/2 {
		t.Fatalf("avg %.3f frozen at pre-flush value %.3f across idle period", q.Avg(), highAvg)
	}
}

// TestREDNonEmptySampleStepUnchanged: arrivals to a non-empty queue
// take exactly one EWMA sample step toward the instantaneous length.
func TestREDNonEmptySampleStepUnchanged(t *testing.T) {
	p := REDParams{MinTh: 20, MaxTh: 30, MaxP: 0.5, Wq: 0.25, MeanPktTime: 100 * sim.Microsecond}
	q, now := newRED(64, p)
	q.Enqueue(&netstack.Packet{ID: 0}) // empty-queue arrival: avg stays 0
	if q.Avg() != 0 {
		t.Fatalf("avg after first arrival = %v, want 0 (decay-only on empty)", q.Avg())
	}
	*now += sim.Time(10 * sim.Microsecond)
	q.Enqueue(&netstack.Packet{ID: 1}) // len 1 at arrival: avg = 0.75·0 + 0.25·1
	if got := q.Avg(); got < 0.2499 || got > 0.2501 {
		t.Fatalf("avg after second arrival = %v, want 0.25", got)
	}
	*now += sim.Time(10 * sim.Microsecond)
	q.Enqueue(&netstack.Packet{ID: 2}) // len 2 at arrival: avg = 0.75·0.25 + 0.25·2
	want := 0.75*0.25 + 0.25*2
	if got := q.Avg(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("avg after third arrival = %v, want %v", got, want)
	}
}

func TestREDInvalidParamsPanic(t *testing.T) {
	bad := []REDParams{
		{MinTh: 5, MaxTh: 5, MaxP: 0.1, Wq: 0.1},
		{MinTh: -1, MaxTh: 5, MaxP: 0.1, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 0, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 1.5, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 0.1, Wq: 0},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %d did not panic", i)
				}
			}()
			newRED(16, p)
		}()
	}
}

func TestDefaultREDParamsValid(t *testing.T) {
	p := DefaultREDParams(50)
	q, _ := newRED(50, p)
	if q == nil {
		t.Fatal("nil queue")
	}
	if p.MinTh >= p.MaxTh {
		t.Fatal("default thresholds inverted")
	}
}
