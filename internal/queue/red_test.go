package queue

import (
	"testing"

	"livelock/internal/netstack"
	"livelock/internal/sim"
)

func newRED(capacity int, p REDParams) (*RED, *sim.Time) {
	var now sim.Time
	return NewRED("red", capacity, func() sim.Time { return now }, sim.NewRNG(1), p), &now
}

func TestREDNeverDropsBelowMinTh(t *testing.T) {
	p := REDParams{MinTh: 10, MaxTh: 20, MaxP: 0.5, Wq: 0.5, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 1000; i++ {
		*now += sim.Time(100 * sim.Microsecond)
		if !q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			t.Fatalf("drop at iteration %d with avg %.2f below MinTh", i, q.Avg())
		}
		if q.Dequeue() == nil {
			t.Fatal("dequeue failed")
		}
	}
	if q.EarlyDrops.Value() != 0 {
		t.Fatalf("EarlyDrops = %d with queue never above MinTh", q.EarlyDrops.Value())
	}
}

func TestREDAlwaysDropsAboveMaxTh(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 6, MaxP: 0.5, Wq: 1, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(32, p)
	// Fill without draining: with Wq=1 the average tracks the
	// instantaneous length exactly.
	accepted := 0
	for i := 0; i < 30; i++ {
		*now += sim.Time(10 * sim.Microsecond)
		if q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			accepted++
		}
	}
	// Once length (= avg) reaches MaxTh, every arrival is dropped.
	if q.Len() > int(p.MaxTh)+1 {
		t.Fatalf("queue grew to %d, above MaxTh %v", q.Len(), p.MaxTh)
	}
	if q.EarlyDrops.Value() == 0 {
		t.Fatal("no early drops above MaxTh")
	}
}

func TestREDProbabilisticRegionDropsSome(t *testing.T) {
	p := REDParams{MinTh: 4, MaxTh: 100, MaxP: 0.3, Wq: 1, MeanPktTime: 70 * sim.Microsecond}
	q, now := newRED(256, p)
	accepted, dropped := 0, 0
	// Hold occupancy around 10 (between thresholds) and offer many
	// arrivals.
	for i := 0; i < 2000; i++ {
		*now += sim.Time(10 * sim.Microsecond)
		if q.Enqueue(&netstack.Packet{ID: uint64(i)}) {
			accepted++
		} else {
			dropped++
		}
		if q.Len() > 10 {
			q.Dequeue()
		}
	}
	if dropped == 0 {
		t.Fatal("no probabilistic drops between thresholds")
	}
	if accepted == 0 {
		t.Fatal("everything dropped between thresholds")
	}
	frac := float64(dropped) / float64(accepted+dropped)
	if frac > 0.5 {
		t.Fatalf("drop fraction %.2f too aggressive for this region", frac)
	}
}

func TestREDIdleAgingDecaysAverage(t *testing.T) {
	p := REDParams{MinTh: 2, MaxTh: 8, MaxP: 0.5, Wq: 0.5, MeanPktTime: 100 * sim.Microsecond}
	q, now := newRED(32, p)
	for i := 0; i < 8; i++ {
		q.Enqueue(&netstack.Packet{ID: uint64(i)})
	}
	for q.Dequeue() != nil {
	}
	highAvg := q.Avg()
	// A long idle period must decay the average toward zero.
	*now += sim.Time(100 * sim.Millisecond)
	q.Enqueue(&netstack.Packet{ID: 99})
	if q.Avg() >= highAvg/2 {
		t.Fatalf("avg %.3f did not decay from %.3f across idle period", q.Avg(), highAvg)
	}
}

func TestREDInvalidParamsPanic(t *testing.T) {
	bad := []REDParams{
		{MinTh: 5, MaxTh: 5, MaxP: 0.1, Wq: 0.1},
		{MinTh: -1, MaxTh: 5, MaxP: 0.1, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 0, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 1.5, Wq: 0.1},
		{MinTh: 1, MaxTh: 5, MaxP: 0.1, Wq: 0},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %d did not panic", i)
				}
			}()
			newRED(16, p)
		}()
	}
}

func TestDefaultREDParamsValid(t *testing.T) {
	p := DefaultREDParams(50)
	q, _ := newRED(50, p)
	if q == nil {
		t.Fatal("nil queue")
	}
	if p.MinTh >= p.MaxTh {
		t.Fatal("default thresholds inverted")
	}
}
