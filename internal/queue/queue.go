// Package queue implements the bounded drop-tail packet FIFOs that sit
// between processing stages in both kernels (ipintrq, output ifqueues,
// the screend input queue), plus the high/low watermark signalling used
// by the modified kernel's queue-state feedback mechanism (§6.6.1 of the
// paper).
package queue

import (
	"livelock/internal/metrics"
	"livelock/internal/netstack"
	"livelock/internal/prov"
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// Queue is a bounded FIFO of packets with drop-tail overflow behaviour
// and optional watermark callbacks.
//
// Watermark semantics follow the paper: when occupancy reaches or exceeds
// the high watermark, OnHigh fires (once, until re-armed by falling to
// the low watermark); when occupancy falls to or below the low watermark,
// OnLow fires (once, until re-armed by reaching the high watermark).
// This hysteresis is what the feedback mechanism uses to inhibit and
// re-enable input processing.
type Queue struct {
	name  string
	limit int
	buf   []*netstack.Packet
	head  int
	count int

	// Watermarks; zero values disable the callbacks.
	highMark int
	lowMark  int
	high     bool // currently in the "above high watermark" regime
	OnHigh   func()
	OnLow    func()

	// Reason is the canonical drop classification for packets this queue
	// rejects (e.g. ReasonIPIntrQFull for ipintrq). Callers that observe
	// an Enqueue failure report the drop under this reason, so the trace
	// stream, drop counters, and provenance table all agree on which
	// queue killed the packet. Zero (ReasonNone) for harness queues that
	// never feed the provenance layer.
	Reason prov.DropReason

	// Drops counts packets rejected because the queue was full.
	Drops *stats.Counter
	// Enqueued counts successful enqueues.
	Enqueued *stats.Counter
	// Occupancy tracks the time-weighted queue length.
	Occupancy *stats.TimeWeighted

	clock func() sim.Time
}

// New returns a queue with the given capacity. clock supplies the
// current simulated time for occupancy statistics; it must be non-nil.
func New(name string, limit int, clock func() sim.Time) *Queue {
	if limit <= 0 {
		panic("queue: non-positive limit")
	}
	if clock == nil {
		panic("queue: nil clock")
	}
	return &Queue{
		name:      name,
		limit:     limit,
		buf:       make([]*netstack.Packet, limit),
		Drops:     stats.NewCounter(name + ".drops"),
		Enqueued:  stats.NewCounter(name + ".enq"),
		Occupancy: stats.NewTimeWeighted(clock(), 0),
		clock:     clock,
	}
}

// SetWatermarks configures hysteresis thresholds. high must be > low and
// <= capacity; low may be 0.
//
// If the queue is live, the hysteresis regime is reconciled with the
// current occupancy under the new thresholds: occupancy at or above the
// new high enters the high regime (firing OnHigh), occupancy at or
// below the new low leaves it (firing OnLow). Without this a stale
// regime flag would swallow the next genuine crossing — e.g. a queue
// already past the new high would never fire OnHigh, leaving feedback
// listeners convinced the queue is uncongested. Occupancy inside the
// new hysteresis band keeps the current regime, exactly as an
// enqueue/dequeue path through the band would.
func (q *Queue) SetWatermarks(high, low int) {
	if high <= low || high > q.limit || low < 0 {
		panic("queue: invalid watermarks")
	}
	q.highMark, q.lowMark = high, low
	if !q.high && q.count >= high {
		q.high = true
		if q.OnHigh != nil {
			q.OnHigh()
		}
	} else if q.high && q.count <= low {
		q.high = false
		if q.OnLow != nil {
			q.OnLow()
		}
	}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Len returns the current occupancy.
func (q *Queue) Len() int { return q.count }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.limit }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.count == q.limit }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.count == 0 }

// Enqueue appends p, returning false (and counting a drop) if the queue
// is full. The caller is responsible for releasing dropped packets.
func (q *Queue) Enqueue(p *netstack.Packet) bool {
	if q.count == q.limit {
		q.Drops.Inc()
		return false
	}
	q.buf[(q.head+q.count)%q.limit] = p
	q.count++
	q.Enqueued.Inc()
	q.Occupancy.Set(q.clock(), float64(q.count))
	if q.highMark > 0 && !q.high && q.count >= q.highMark {
		q.high = true
		if q.OnHigh != nil {
			q.OnHigh()
		}
	}
	return true
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *Queue) Peek() *netstack.Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Dequeue removes and returns the oldest packet, or nil if empty.
func (q *Queue) Dequeue() *netstack.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % q.limit
	q.count--
	q.Occupancy.Set(q.clock(), float64(q.count))
	if q.highMark > 0 && q.high && q.count <= q.lowMark {
		q.high = false
		if q.OnLow != nil {
			q.OnLow()
		}
	}
	return p
}

// AboveHigh reports whether the queue is in the above-high-watermark
// regime (i.e. OnHigh has fired and OnLow has not yet).
func (q *Queue) AboveHigh() bool { return q.high }

// Each calls fn for every queued packet in FIFO order, without removing
// any. Exploration harnesses use this to fingerprint queue contents; fn
// must not mutate the queue.
func (q *Queue) Each(fn func(*netstack.Packet)) {
	for i := 0; i < q.count; i++ {
		fn(q.buf[(q.head+i)%q.limit])
	}
}

// RegisterMetrics registers the queue's instruments under its name: a
// point-in-time depth gauge plus the drop and enqueue counters. The
// depth gauge is the timeline's livelock tell — a queue pegged at
// capacity for whole sample intervals means every marginal packet is
// dropped after upstream work was invested in it.
func (q *Queue) RegisterMetrics(reg *metrics.Registry) error {
	if err := reg.Gauge(q.name+".depth", func() float64 { return float64(q.count) }); err != nil {
		return err
	}
	if err := reg.Counter(q.name+".drops", q.Drops); err != nil {
		return err
	}
	return reg.Counter(q.name+".enq", q.Enqueued)
}

// Flush releases all queued packets and returns how many were
// discarded. Used at teardown: unlike Dequeue it never fires the OnLow
// watermark callback, which would otherwise poke feedback gates and
// schedule input re-enable work on a quiescing engine. The hysteresis
// state is cleared silently.
func (q *Queue) Flush() int {
	n := q.count
	for i := 0; i < n; i++ {
		p := q.buf[q.head]
		q.buf[q.head] = nil
		q.head = (q.head + 1) % q.limit
		p.Release()
	}
	q.count = 0
	q.high = false
	q.Occupancy.Set(q.clock(), 0)
	return n
}
