package queue

import (
	"math"

	"livelock/internal/netstack"
	"livelock/internal/sim"
	"livelock/internal/stats"
)

// REDParams configure Random Early Detection (Floyd & Jacobson, 1993 —
// reference [3] of the paper, cited in §8: "The policy was and remains
// 'drop-tail'; other policies might provide better results"). RED drops
// arriving packets probabilistically once the *average* queue length
// exceeds MinTh, keeping standing queues (and thus latency) short while
// absorbing bursts.
type REDParams struct {
	// MinTh and MaxTh are the average-occupancy thresholds (packets).
	MinTh, MaxTh float64
	// MaxP is the drop probability as the average reaches MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue length (typ. 0.002;
	// we default higher because simulated trials are short).
	Wq float64
	// MeanPktTime estimates the transmission time of one packet, used
	// to age the average across idle periods.
	MeanPktTime sim.Duration
}

// DefaultREDParams returns parameters scaled to a queue capacity.
func DefaultREDParams(capacity int) REDParams {
	return REDParams{
		MinTh:       float64(capacity) / 6,
		MaxTh:       float64(capacity) / 2,
		MaxP:        0.1,
		Wq:          0.02,
		MeanPktTime: 70 * sim.Microsecond, // minimum Ethernet frame
	}
}

// RED wraps a Queue with Random Early Detection admission. Dequeue and
// inspection go through the embedded queue; arrivals must use
// RED.Enqueue.
type RED struct {
	*Queue
	p   REDParams
	rng *sim.RNG

	avg       float64
	count     int      // packets since the last early drop
	emptyAt   sim.Time // start of the current idle period (valid while empty)
	clockFunc func() sim.Time

	// EarlyDrops counts probabilistic (pre-full) drops; forced tail
	// drops continue to count in Queue.Drops.
	EarlyDrops *stats.Counter
}

// NewRED returns a RED-managed queue.
func NewRED(name string, limit int, clock func() sim.Time, rng *sim.RNG, p REDParams) *RED {
	if p.MaxTh <= p.MinTh || p.MinTh < 0 || p.MaxP <= 0 || p.MaxP > 1 ||
		p.Wq <= 0 || p.Wq > 1 {
		panic("queue: invalid RED parameters")
	}
	return &RED{
		Queue:      New(name, limit, clock),
		p:          p,
		rng:        rng,
		emptyAt:    clock(),
		clockFunc:  clock,
		EarlyDrops: stats.NewCounter(name + ".earlydrops"),
	}
}

// Avg returns the current average queue estimate.
func (r *RED) Avg() float64 { return r.avg }

// Enqueue applies the RED admission test and then enqueues. It returns
// false if the packet was dropped (early or tail); the caller releases
// it either way, exactly as with Queue.Enqueue.
func (r *RED) Enqueue(pkt *netstack.Packet) bool {
	r.updateAvg()
	switch {
	case r.avg < r.p.MinTh:
		r.count = -1
	case r.avg >= r.p.MaxTh:
		r.EarlyDrops.Inc()
		r.count = 0
		return false
	default:
		r.count++
		pb := r.p.MaxP * (r.avg - r.p.MinTh) / (r.p.MaxTh - r.p.MinTh)
		// Spread drops uniformly within a round (Floyd & Jacobson
		// eqn. for pa).
		pa := pb
		if d := 1 - float64(r.count)*pb; d > 0 {
			pa = pb / d
		} else {
			pa = 1
		}
		if r.rng.Float64() < pa {
			r.EarlyDrops.Inc()
			r.count = 0
			return false
		}
	}
	return r.Queue.Enqueue(pkt)
}

// Dequeue removes the oldest packet, tracking idle-start for average
// aging.
func (r *RED) Dequeue() *netstack.Packet {
	pkt := r.Queue.Dequeue()
	if pkt != nil && r.Queue.Empty() {
		r.emptyAt = r.clockFunc()
	}
	return pkt
}

// Flush discards all queued packets (see Queue.Flush) and starts an
// idle period, so the average left over from before the flush decays
// across the following gap instead of freezing at its last value.
func (r *RED) Flush() int {
	n := r.Queue.Flush()
	if n > 0 {
		r.emptyAt = r.clockFunc()
	}
	return n
}

// updateAvg advances the EWMA at an arrival, per Floyd & Jacobson §4:
// if the queue is non-empty the average takes one sample step toward
// the instantaneous length; if the queue is empty the idle period is
// aged as if m = idle/MeanPktTime small packets had been transmitted —
// decay only, with no sample step, because a zero instantaneous length
// during idle says the link went quiet, not that congestion cleared by
// exactly one more EWMA step. (The pre-fix code applied the sample
// step unconditionally, over-decaying after every idle gap and — worse
// — never decaying at all after a Flush, whose stale idle-start flag
// froze the average at its last-enqueue value.)
func (r *RED) updateAvg() {
	if r.Queue.Empty() {
		idle := r.clockFunc().Sub(r.emptyAt)
		if r.p.MeanPktTime > 0 && idle > 0 {
			m := float64(idle) / float64(r.p.MeanPktTime)
			r.avg *= math.Pow(1-r.p.Wq, m)
		}
		r.emptyAt = r.clockFunc()
		return
	}
	r.avg = (1-r.p.Wq)*r.avg + r.p.Wq*float64(r.Queue.Len())
}
