package queue

import (
	"testing"
	"testing/quick"

	"livelock/internal/netstack"
	"livelock/internal/sim"
)

func clockAt(t *sim.Time) func() sim.Time { return func() sim.Time { return *t } }

func pkt(id uint64) *netstack.Packet { return &netstack.Packet{ID: id} }

func TestQueueFIFO(t *testing.T) {
	var now sim.Time
	q := New("q", 4, clockAt(&now))
	for i := uint64(1); i <= 4; i++ {
		if !q.Enqueue(pkt(i)) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	for i := uint64(1); i <= 4; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue = %v, want id %d", p, i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty returned a packet")
	}
	if !q.Empty() {
		t.Fatal("queue should be empty")
	}
}

func TestQueueDropTail(t *testing.T) {
	var now sim.Time
	q := New("q", 2, clockAt(&now))
	q.Enqueue(pkt(1))
	q.Enqueue(pkt(2))
	if q.Enqueue(pkt(3)) {
		t.Fatal("enqueue into full queue succeeded")
	}
	if q.Drops.Value() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops.Value())
	}
	if q.Enqueued.Value() != 2 {
		t.Fatalf("Enqueued = %d, want 2", q.Enqueued.Value())
	}
	// Head is preserved (tail dropped).
	if p := q.Dequeue(); p.ID != 1 {
		t.Fatalf("head = %d, want 1", p.ID)
	}
}

func TestQueueWrapAround(t *testing.T) {
	var now sim.Time
	q := New("q", 3, clockAt(&now))
	id := uint64(0)
	for round := 0; round < 10; round++ {
		q.Enqueue(pkt(id))
		q.Enqueue(pkt(id + 1))
		a, b := q.Dequeue(), q.Dequeue()
		if a.ID != id || b.ID != id+1 {
			t.Fatalf("round %d: got %d,%d want %d,%d", round, a.ID, b.ID, id, id+1)
		}
		id += 2
	}
}

func TestQueueWatermarkHysteresis(t *testing.T) {
	var now sim.Time
	q := New("q", 8, clockAt(&now))
	q.SetWatermarks(6, 2)
	highs, lows := 0, 0
	q.OnHigh = func() { highs++ }
	q.OnLow = func() { lows++ }

	for i := 0; i < 8; i++ {
		q.Enqueue(pkt(uint64(i)))
	}
	if highs != 1 {
		t.Fatalf("OnHigh fired %d times while filling, want 1", highs)
	}
	if !q.AboveHigh() {
		t.Fatal("AboveHigh should be true")
	}
	// Drain to 3: still above low watermark → no OnLow.
	for q.Len() > 3 {
		q.Dequeue()
	}
	if lows != 0 {
		t.Fatalf("OnLow fired early (%d)", lows)
	}
	q.Dequeue() // now 2 == low
	if lows != 1 {
		t.Fatalf("OnLow fired %d times, want 1", lows)
	}
	if q.AboveHigh() {
		t.Fatal("AboveHigh should have cleared")
	}
	// Re-fill: OnHigh fires again exactly once at 6.
	for q.Len() < 8 {
		q.Enqueue(pkt(0))
	}
	if highs != 2 {
		t.Fatalf("OnHigh fired %d times total, want 2", highs)
	}
}

func TestQueueWatermarkNoRefireWithinRegime(t *testing.T) {
	var now sim.Time
	q := New("q", 8, clockAt(&now))
	q.SetWatermarks(4, 1)
	highs := 0
	q.OnHigh = func() { highs++ }
	for i := 0; i < 6; i++ {
		q.Enqueue(pkt(0))
	}
	q.Dequeue() // 5, still above low
	q.Enqueue(pkt(0))
	if highs != 1 {
		t.Fatalf("OnHigh fired %d times, want 1 (no refire above low mark)", highs)
	}
}

// TestQueueSetWatermarksReconcilesHysteresis: reconfiguring watermarks
// on a live queue must reconcile the hysteresis regime with the current
// occupancy. Before the fix, a queue already at/past the new high kept
// q.high == false, so the high crossing that had *already happened* was
// never signalled — and the eventual drain to the low mark fired
// nothing either, leaving feedback listeners out of sync for good.
func TestQueueSetWatermarksReconcilesHysteresis(t *testing.T) {
	var now sim.Time

	// Case 1: occupancy already past the new high → OnHigh fires once
	// at reconfiguration, and the subsequent drain fires OnLow once.
	q := New("q", 16, clockAt(&now))
	highs, lows := 0, 0
	q.OnHigh = func() { highs++ }
	q.OnLow = func() { lows++ }
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(uint64(i)))
	}
	q.SetWatermarks(6, 2)
	if highs != 1 {
		t.Fatalf("OnHigh fired %d times on reconfigure past high, want 1", highs)
	}
	if !q.AboveHigh() {
		t.Fatal("queue not in high regime after reconfigure past high")
	}
	for q.Len() > 2 {
		q.Dequeue()
	}
	if lows != 1 {
		t.Fatalf("OnLow fired %d times draining to low, want 1", lows)
	}
	// Refill: the crossing must re-arm normally.
	for q.Len() < 6 {
		q.Enqueue(pkt(0))
	}
	if highs != 2 {
		t.Fatalf("OnHigh fired %d times after refill, want 2", highs)
	}

	// Case 2: in the high regime, new watermarks placed above the
	// occupancy → OnLow fires once at reconfiguration (the queue is at
	// or below the new low), and the next high crossing is not
	// swallowed.
	q2 := New("q2", 16, clockAt(&now))
	highs2, lows2 := 0, 0
	q2.OnHigh = func() { highs2++ }
	q2.OnLow = func() { lows2++ }
	q2.SetWatermarks(3, 1)
	for i := 0; i < 3; i++ {
		q2.Enqueue(pkt(uint64(i)))
	}
	if highs2 != 1 || !q2.AboveHigh() {
		t.Fatalf("setup: highs=%d AboveHigh=%v", highs2, q2.AboveHigh())
	}
	q2.Dequeue() // occupancy 2, still in high regime (low mark is 1)
	q2.SetWatermarks(8, 4)
	if lows2 != 1 {
		t.Fatalf("OnLow fired %d times on reconfigure above occupancy, want 1", lows2)
	}
	if q2.AboveHigh() {
		t.Fatal("queue still in high regime after reconfigure above occupancy")
	}
	for q2.Len() < 8 {
		q2.Enqueue(pkt(0))
	}
	if highs2 != 2 {
		t.Fatalf("OnHigh fired %d times reaching the new high, want 2 (crossing swallowed)", highs2)
	}

	// Case 3: occupancy inside the new hysteresis band keeps the
	// current regime and fires nothing.
	q3 := New("q3", 16, clockAt(&now))
	highs3, lows3 := 0, 0
	q3.OnHigh = func() { highs3++ }
	q3.OnLow = func() { lows3++ }
	for i := 0; i < 5; i++ {
		q3.Enqueue(pkt(uint64(i)))
	}
	q3.SetWatermarks(8, 2) // occupancy 5 sits inside (2, 8)
	if highs3 != 0 || lows3 != 0 || q3.AboveHigh() {
		t.Fatalf("in-band reconfigure fired callbacks: highs=%d lows=%d AboveHigh=%v",
			highs3, lows3, q3.AboveHigh())
	}
}

func TestQueueInvalidConfig(t *testing.T) {
	var now sim.Time
	for _, f := range []func(){
		func() { New("q", 0, clockAt(&now)) },
		func() { New("q", 1, nil) },
		func() {
			q := New("q", 4, clockAt(&now))
			q.SetWatermarks(2, 2)
		},
		func() {
			q := New("q", 4, clockAt(&now))
			q.SetWatermarks(5, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid configuration did not panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueOccupancyStats(t *testing.T) {
	var now sim.Time
	q := New("q", 4, clockAt(&now))
	q.Enqueue(pkt(1)) // occupancy 1 from t=0
	now = sim.Time(2 * sim.Second)
	q.Enqueue(pkt(2)) // occupancy 2 from t=2s
	now = sim.Time(4 * sim.Second)
	mean := q.Occupancy.Mean(now) // (1*2 + 2*2)/4 = 1.5
	if mean < 1.49 || mean > 1.51 {
		t.Fatalf("occupancy mean = %v, want 1.5", mean)
	}
	if q.Occupancy.Max() != 2 {
		t.Fatalf("occupancy max = %v", q.Occupancy.Max())
	}
}

func TestQueueFlush(t *testing.T) {
	var now sim.Time
	q := New("q", 4, clockAt(&now))
	q.Enqueue(pkt(1))
	q.Enqueue(pkt(2))
	if n := q.Flush(); n != 2 {
		t.Fatalf("Flush = %d, want 2", n)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after flush")
	}
}

// TestQueueFlushSkipsHysteresis: teardown must not fire the OnLow
// re-enable callback — a flush is not the feedback mechanism draining
// the queue, and poking feedback gates on a quiescing engine schedules
// spurious re-enable work.
func TestQueueFlushSkipsHysteresis(t *testing.T) {
	var now sim.Time
	q := New("q", 8, clockAt(&now))
	q.SetWatermarks(4, 1)
	highs, lows := 0, 0
	q.OnHigh = func() { highs++ }
	q.OnLow = func() { lows++ }
	for i := 0; i < 6; i++ {
		q.Enqueue(pkt(uint64(i)))
	}
	if highs != 1 || !q.AboveHigh() {
		t.Fatalf("OnHigh fired %d times (AboveHigh=%v), want 1/true", highs, q.AboveHigh())
	}
	if n := q.Flush(); n != 6 {
		t.Fatalf("Flush = %d, want 6", n)
	}
	if lows != 0 {
		t.Fatalf("OnLow fired %d times during Flush, want 0", lows)
	}
	if q.AboveHigh() {
		t.Fatal("hysteresis state not cleared by Flush")
	}
	// The hysteresis must be re-armed: a fresh fill fires OnHigh again.
	for i := 0; i < 4; i++ {
		q.Enqueue(pkt(uint64(i)))
	}
	if highs != 2 {
		t.Fatalf("OnHigh fired %d times after re-fill, want 2", highs)
	}
}

func TestQueueConservationProperty(t *testing.T) {
	// Property: enqueued = dequeued + dropped-at-enqueue + still-queued,
	// and FIFO order is preserved, for any op sequence.
	check := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		var now sim.Time
		q := New("q", capacity, clockAt(&now))
		nextID, wantNext := uint64(0), uint64(0)
		dequeued := 0
		for _, enq := range ops {
			now += sim.Time(sim.Microsecond)
			if enq {
				ok := q.Enqueue(pkt(nextID))
				if ok {
					nextID++
				} else {
					// Drop-tail: the dropped packet never gets an ID slot;
					// conservation counts it via Drops.
					nextID++
					wantNextAdjust(q, &wantNext)
				}
			} else {
				p := q.Dequeue()
				if p != nil {
					dequeued++
					// FIFO: IDs of delivered packets must be increasing.
					if p.ID < wantNext {
						return false
					}
					wantNext = p.ID + 1
				}
			}
		}
		total := q.Enqueued.Value() + q.Drops.Value()
		return total == nextID &&
			int(q.Enqueued.Value()) == dequeued+q.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// wantNextAdjust is a no-op placeholder documenting that a dropped packet
// consumes an ID but never appears at the head.
func wantNextAdjust(*Queue, *uint64) {}
