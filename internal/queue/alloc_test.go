package queue

import (
	"testing"

	"livelock/internal/netstack"
	"livelock/internal/sim"
)

// The per-packet queue operations sit on the forwarding fast path —
// every frame crosses at least one bounded FIFO — so they must not
// allocate, including when the watermark hysteresis callbacks fire.
func TestAllocsEnqueueDequeue(t *testing.T) {
	eng := sim.NewEngine()
	q := New("t", 8, eng.Now)
	q.SetWatermarks(6, 2)
	q.OnHigh = func() {}
	q.OnLow = func() {}
	pool := netstack.NewPool(8, 64)

	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			p := pool.Get(60)
			if !q.Enqueue(p) {
				p.Release()
			}
		}
		for {
			p := q.Dequeue()
			if p == nil {
				break
			}
			p.Release()
		}
	})
	if allocs != 0 {
		t.Fatalf("enqueue/dequeue cycle allocates %v objects, want 0", allocs)
	}
}
