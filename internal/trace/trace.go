// Package trace provides a bounded, allocation-free event tracer for
// packet lifecycles: each record is (simulated time, typed stage, drop
// reason, packet id). The kernel emits records at every decision point
// — ring accept/drop, queue enqueue/drop, forwarding, screening,
// transmit — so a short traced run shows exactly where a given packet
// spent time or died.
//
// Records are typed (prov.Stage / prov.DropReason) rather than
// free-form strings: emission allocates nothing, and the stage
// vocabulary is shared with the drop counters and the provenance
// profiler, so trace output can never disagree with the metric columns
// about what happened. Record.String renders the same legacy texts the
// string-based tracer produced.
//
// Ring eviction: the tracer retains only the most recent capacity
// records. When a new record arrives with the ring full, the oldest
// retained record is evicted to make room; Total still counts every
// record ever emitted. By default evicted records are silently
// discarded (the right behaviour for "show me the last N events before
// the interesting moment"); long timeline runs that need the complete
// stream can install an OnEvict sink and stream evicted records to
// disk instead of losing them.
package trace

import (
	"fmt"
	"io"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

// Record is one trace event.
type Record struct {
	At    sim.Time
	Pkt   uint64
	Stage prov.Stage
	// Reason is non-None exactly when the record marks a drop; it is
	// derived from the stage's drop classification at the emission
	// site, never chosen independently.
	Reason prov.DropReason
}

// Text returns the record's event text (the stage's legacy string).
func (r Record) Text() string { return r.Stage.String() }

// String formats the record.
func (r Record) String() string {
	return fmt.Sprintf("%12v  pkt#%-8d %s", r.At, r.Pkt, r.Stage)
}

// Tracer is a fixed-capacity ring of records: the most recent capacity
// events are retained.
type Tracer struct {
	buf   []Record
	next  int
	total uint64

	// OnEvict, if non-nil, observes each record displaced from the ring
	// by a newer one, in emission order, before it is overwritten. It
	// must not call back into the Tracer.
	OnEvict func(Record)
}

// New returns a tracer retaining the last capacity records.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Tracer{buf: make([]Record, 0, capacity)}
}

// Emit records a lifecycle event. It is allocation-free.
func (t *Tracer) Emit(at sim.Time, stage prov.Stage, pkt uint64) {
	t.emit(Record{At: at, Stage: stage, Pkt: pkt})
}

// EmitDrop records a drop event under the reason's canonical stage.
func (t *Tracer) EmitDrop(at sim.Time, reason prov.DropReason, pkt uint64) {
	t.emit(Record{At: at, Stage: reason.Stage(), Reason: reason, Pkt: pkt})
}

func (t *Tracer) emit(r Record) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		if t.OnEvict != nil {
			t.OnEvict(t.buf[t.next])
		}
		t.buf[t.next] = r
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
}

// Total returns the number of events emitted (including evicted ones).
func (t *Tracer) Total() uint64 { return t.total }

// Reset discards all retained records and zeroes the emitted-event
// total, keeping the capacity and the OnEvict sink. Records dropped by
// Reset are not reported to OnEvict — they were not displaced by newer
// ones, the caller explicitly threw them away (e.g. at the end of a
// warmup window).
func (t *Tracer) Reset() {
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
}

// Records returns the retained records, oldest first.
func (t *Tracer) Records() []Record {
	if len(t.buf) < cap(t.buf) {
		out := make([]Record, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]Record, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Filter returns retained records for one packet id, oldest first.
func (t *Tracer) Filter(pkt uint64) []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Pkt == pkt {
			out = append(out, r)
		}
	}
	return out
}

// WriteTo dumps the retained records; it implements io.WriterTo.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, r := range t.Records() {
		m, err := fmt.Fprintln(w, r)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
