package trace

import (
	"bytes"
	"strings"
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(4)
	for i := 0; i < 3; i++ {
		tr.Emit(sim.Time(i), prov.StageRxRingAccept, uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Pkt != uint64(i) {
			t.Fatalf("out of order: %v", recs)
		}
	}
}

func TestTracerEvictsOldest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Emit(0, prov.StageRxRingAccept, uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	want := []uint64{7, 8, 9}
	for i, r := range recs {
		if r.Pkt != want[i] {
			t.Fatalf("records = %v, want pkts %v", recs, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestTracerFilter(t *testing.T) {
	tr := New(10)
	tr.Emit(0, prov.StageRxRingAccept, 1)
	tr.Emit(1, prov.StageForwarded, 2)
	tr.Emit(2, prov.StageTxDescriptor, 1)
	got := tr.Filter(1)
	if len(got) != 2 || got[0].Stage != prov.StageRxRingAccept || got[1].Stage != prov.StageTxDescriptor {
		t.Fatalf("Filter = %v", got)
	}
}

// Drop records carry the reason and render under the reason's canonical
// stage text, so "which stage killed it" is derivable from either field.
func TestTracerEmitDrop(t *testing.T) {
	tr := New(4)
	tr.EmitDrop(100, prov.ReasonIPIntrQFull, 9)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("len = %d", len(recs))
	}
	r := recs[0]
	if r.Reason != prov.ReasonIPIntrQFull || r.Stage != prov.StageIPIntrQDrop {
		t.Fatalf("record = %+v", r)
	}
	if !strings.Contains(r.String(), "ipintrq DROP (full)") {
		t.Fatalf("String = %q", r.String())
	}
	// Non-drop records carry ReasonNone.
	tr.Emit(101, prov.StageForwarded, 10)
	if got := tr.Records()[1].Reason; got != prov.ReasonNone {
		t.Fatalf("non-drop reason = %v", got)
	}
}

func TestTracerWriteTo(t *testing.T) {
	tr := New(4)
	tr.Emit(1500, prov.StageRxRingAccept, 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkt#7") || !strings.Contains(buf.String(), "rx-ring accept") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestTracerReset(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Emit(sim.Time(i), prov.StageRxRingAccept, uint64(i))
	}
	tr.Reset()
	if len(tr.Records()) != 0 || tr.Total() != 0 {
		t.Fatalf("Reset left %d records, total %d", len(tr.Records()), tr.Total())
	}
	// Capacity survives and the ring fills from the start again.
	for i := 10; i < 14; i++ {
		tr.Emit(sim.Time(i), prov.StageRxRingAccept, uint64(i))
	}
	recs := tr.Records()
	want := []uint64{11, 12, 13}
	if len(recs) != 3 {
		t.Fatalf("len = %d after refill", len(recs))
	}
	for i, r := range recs {
		if r.Pkt != want[i] {
			t.Fatalf("records = %v, want pkts %v", recs, want)
		}
	}
}

func TestTracerOnEvict(t *testing.T) {
	tr := New(3)
	var evicted []uint64
	tr.OnEvict = func(r Record) { evicted = append(evicted, r.Pkt) }
	for i := 0; i < 7; i++ {
		tr.Emit(sim.Time(i), prov.StageRxRingAccept, uint64(i))
	}
	// Ring keeps the last 3; the first 4 must stream out in emission
	// order, so OnEvict + Records together see every record exactly once.
	want := []uint64{0, 1, 2, 3}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i, p := range evicted {
		if p != want[i] {
			t.Fatalf("evicted %v, want %v", evicted, want)
		}
	}
	// Reset discards retained records without reporting them as evicted.
	evicted = evicted[:0]
	tr.Reset()
	if len(evicted) != 0 {
		t.Fatalf("Reset reported %v to OnEvict", evicted)
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New(0)
}
