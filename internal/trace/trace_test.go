package trace

import (
	"bytes"
	"strings"
	"testing"

	"livelock/internal/sim"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(4)
	for i := 0; i < 3; i++ {
		tr.Emit(sim.Time(i), "ev", uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Pkt != uint64(i) {
			t.Fatalf("out of order: %v", recs)
		}
	}
}

func TestTracerEvictsOldest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Emit(0, "ev", uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	want := []uint64{7, 8, 9}
	for i, r := range recs {
		if r.Pkt != want[i] {
			t.Fatalf("records = %v, want pkts %v", recs, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestTracerFilter(t *testing.T) {
	tr := New(10)
	tr.Emit(0, "a", 1)
	tr.Emit(1, "b", 2)
	tr.Emit(2, "c", 1)
	got := tr.Filter(1)
	if len(got) != 2 || got[0].Event != "a" || got[1].Event != "c" {
		t.Fatalf("Filter = %v", got)
	}
}

func TestTracerWriteTo(t *testing.T) {
	tr := New(4)
	tr.Emit(1500, "rx-ring", 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkt#7") || !strings.Contains(buf.String(), "rx-ring") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New(0)
}
