package trace

import (
	"bytes"
	"strings"
	"testing"

	"livelock/internal/sim"
)

func TestTracerRetainsInOrder(t *testing.T) {
	tr := New(4)
	for i := 0; i < 3; i++ {
		tr.Emit(sim.Time(i), "ev", uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Pkt != uint64(i) {
			t.Fatalf("out of order: %v", recs)
		}
	}
}

func TestTracerEvictsOldest(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Emit(0, "ev", uint64(i))
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	want := []uint64{7, 8, 9}
	for i, r := range recs {
		if r.Pkt != want[i] {
			t.Fatalf("records = %v, want pkts %v", recs, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestTracerFilter(t *testing.T) {
	tr := New(10)
	tr.Emit(0, "a", 1)
	tr.Emit(1, "b", 2)
	tr.Emit(2, "c", 1)
	got := tr.Filter(1)
	if len(got) != 2 || got[0].Event != "a" || got[1].Event != "c" {
		t.Fatalf("Filter = %v", got)
	}
}

func TestTracerWriteTo(t *testing.T) {
	tr := New(4)
	tr.Emit(1500, "rx-ring", 7)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pkt#7") || !strings.Contains(buf.String(), "rx-ring") {
		t.Fatalf("output %q", buf.String())
	}
}

func TestTracerReset(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.Emit(sim.Time(i), "ev", uint64(i))
	}
	tr.Reset()
	if len(tr.Records()) != 0 || tr.Total() != 0 {
		t.Fatalf("Reset left %d records, total %d", len(tr.Records()), tr.Total())
	}
	// Capacity survives and the ring fills from the start again.
	for i := 10; i < 14; i++ {
		tr.Emit(sim.Time(i), "ev", uint64(i))
	}
	recs := tr.Records()
	want := []uint64{11, 12, 13}
	if len(recs) != 3 {
		t.Fatalf("len = %d after refill", len(recs))
	}
	for i, r := range recs {
		if r.Pkt != want[i] {
			t.Fatalf("records = %v, want pkts %v", recs, want)
		}
	}
}

func TestTracerOnEvict(t *testing.T) {
	tr := New(3)
	var evicted []uint64
	tr.OnEvict = func(r Record) { evicted = append(evicted, r.Pkt) }
	for i := 0; i < 7; i++ {
		tr.Emit(sim.Time(i), "ev", uint64(i))
	}
	// Ring keeps the last 3; the first 4 must stream out in emission
	// order, so OnEvict + Records together see every record exactly once.
	want := []uint64{0, 1, 2, 3}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i, p := range evicted {
		if p != want[i] {
			t.Fatalf("evicted %v, want %v", evicted, want)
		}
	}
	// Reset discards retained records without reporting them as evicted.
	evicted = evicted[:0]
	tr.Reset()
	if len(evicted) != 0 {
		t.Fatalf("Reset reported %v to OnEvict", evicted)
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New(0)
}
