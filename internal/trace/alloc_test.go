package trace

import (
	"testing"

	"livelock/internal/prov"
	"livelock/internal/sim"
)

// Emit sits on every traced hot-path event — with typed stage records
// there is no string formatting at emission time, so a full ring cycle
// (append, wrap, evict) must not allocate.
func TestAllocsEmit(t *testing.T) {
	tr := New(8)
	tr.OnEvict = func(Record) {}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			tr.Emit(sim.Time(i), prov.StageForwarded, uint64(i))
			tr.EmitDrop(sim.Time(i), prov.ReasonOutQFull, uint64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v objects, want 0", allocs)
	}
}
