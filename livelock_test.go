package livelock

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end-to-end; detailed behaviour
// is covered in the internal packages.

func TestPublicRunTrial(t *testing.T) {
	res := RunTrial(Config{Mode: ModePolled, Quota: 5}, 2000, 200*Millisecond, Second)
	if res.OutputRate < 1900 || res.OutputRate > 2100 {
		t.Fatalf("OutputRate = %.0f, want ≈2000", res.OutputRate)
	}
	if res.Accounting.Malformed != 0 {
		t.Fatal("malformed frames")
	}
}

func TestPublicFigureByID(t *testing.T) {
	run := FigureByID("6-1")
	if run == nil {
		t.Fatal("FigureByID(6-1) = nil")
	}
	fig := run(Options{Rates: []float64{1000}, Warmup: 100 * Millisecond, Measure: 300 * Millisecond})
	if fig.ID != "6-1" || len(fig.Series) != 2 {
		t.Fatalf("unexpected figure %q with %d series", fig.ID, len(fig.Series))
	}
	var buf bytes.Buffer
	if err := fig.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestPublicRouterAssembly(t *testing.T) {
	eng := NewEngine()
	r := NewRouter(eng, Config{Mode: ModeUnmodified})
	gen := r.AttachGenerator(0, ConstantRate{Rate: 500}, 100)
	gen.Start()
	eng.Run(Time(Second))
	if r.Delivered() != 100 {
		t.Fatalf("Delivered = %d, want 100", r.Delivered())
	}
}

func TestPublicHelpers(t *testing.T) {
	o := Options{Warmup: 200 * Millisecond, Measure: 500 * Millisecond}
	if m := MLFRR(Config{Mode: ModeUnmodified}, 0.98, o); m < 3500 || m > 6000 {
		t.Fatalf("MLFRR = %.0f", m)
	}
	st := TransmitStarvation(o)
	if st.OutputRate > 500 {
		t.Fatalf("starvation output = %.0f", st.OutputRate)
	}
	f := Fairness(ModePolled, 5, 2, 8000, o)
	if f.Imbalance() > 1.2 {
		t.Fatalf("imbalance %.2f", f.Imbalance())
	}
}

func TestPublicEndSystemAPI(t *testing.T) {
	eng := NewEngine()
	r := NewRouter(eng, Config{Mode: ModePolled, Quota: 5})
	app := r.StartApp(AppConfig{
		Port: 2049, RecvCost: 100 * Microsecond, ProcessCost: 100 * Microsecond,
		ReplyBytes: 64, ReplyCost: 100 * Microsecond,
	})
	mon := r.StartMonitor(MonitorConfig{})
	client := r.AttachClient(0, ClientConfig{Port: 2049, Window: 4})
	client.Start()
	eng.Run(Time(Second))
	if app.Served.Value() == 0 || client.Completed.Value() == 0 {
		t.Fatalf("served=%d completed=%d", app.Served.Value(), client.Completed.Value())
	}
	if mon.Captured.Value() == 0 {
		t.Fatal("monitor captured nothing")
	}
	if RouterIP(0) != (Addr{10, 0, 0, 1}) {
		t.Fatalf("RouterIP(0) = %v", RouterIP(0))
	}
	if PhantomDest() != (Addr{10, 0, 1, 9}) {
		t.Fatalf("PhantomDest = %v", PhantomDest())
	}
}

func TestPublicTCP(t *testing.T) {
	pts := TCPUnderFlood(ModePolled, []float64{0},
		Options{Warmup: 200 * Millisecond, Measure: Second})
	if len(pts) != 1 || pts[0].GoodputBps < 500_000 {
		t.Fatalf("TCP goodput = %+v", pts)
	}
	var buf bytes.Buffer
	if err := WriteTCPTable(&buf, Options{Warmup: 100 * Millisecond, Measure: 300 * Millisecond}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polled goodput") {
		t.Fatalf("table: %s", buf.String())
	}
}

func TestPublicClockedAndLatencyTables(t *testing.T) {
	o := Options{Warmup: 100 * Millisecond, Measure: 300 * Millisecond}
	var buf bytes.Buffer
	if err := WriteClockedTable(&buf, o); err != nil {
		t.Fatal(err)
	}
	if err := WriteBurstLatencyTable(&buf, o); err != nil {
		t.Fatal(err)
	}
	if pts := ClockedPollingSweep([]Duration{Millisecond}, o); len(pts) != 1 {
		t.Fatalf("clocked sweep: %v", pts)
	}
	if bl := BurstLatency(ModePolled, 8, o); bl.FirstPkt <= 0 {
		t.Fatalf("burst latency: %+v", bl)
	}
}

func TestPublicCostsProfiles(t *testing.T) {
	d, m := DefaultCosts(), ModernCosts()
	if m.PolledRxPerPkt >= d.PolledRxPerPkt/50 {
		t.Fatalf("ModernCosts not ~100× faster: %v vs %v", m.PolledRxPerPkt, d.PolledRxPerPkt)
	}
	if DefaultConfig().IPIntrQLimit != 50 {
		t.Fatalf("DefaultConfig ipintrq limit = %d", DefaultConfig().IPIntrQLimit)
	}
}

func TestPublicAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	figs := AllFigures(Options{
		Rates:   []float64{1000, 8000},
		Warmup:  100 * Millisecond,
		Measure: 300 * Millisecond,
	})
	if len(figs) != 11 {
		t.Fatalf("AllFigures returned %d figures", len(figs))
	}
	for _, f := range figs {
		var buf bytes.Buffer
		if err := f.WritePlot(&buf); err != nil {
			t.Fatalf("%s plot: %v", f.ID, err)
		}
	}
}
