#!/usr/bin/env bash
# Third-party linters at pinned versions: staticcheck and govulncheck.
# The pins keep local runs and CI honest about which rule set applies;
# bump them deliberately, in their own PR, and note the new version in
# the commit message.
#
# Both tools run via `go run module@version`, which needs the module
# proxy. Offline checkouts (sandboxes, air-gapped machines) cannot fetch
# them, so an unfetchable tool is reported as a SKIP rather than a
# failure — `make lint` stays useful everywhere, and CI (which always
# has network) enforces the pins unconditionally. Findings from a tool
# that did run always fail.
set -u

# Pins re-audited 2026-08 alongside the lockguard pass: 2025.1.1 and
# v1.1.4 are the newest releases verified to build on the module's Go
# 1.24 toolchain. Override via the environment to trial a newer tool
# without editing the pin.
STATICCHECK_VERSION="${STATICCHECK_VERSION:-2025.1.1}"
GOVULNCHECK_VERSION="${GOVULNCHECK_VERSION:-v1.1.4}"

rc=0

# run_pinned NAME MODULE@VERSION ARGS...
# Probes with -version first: a probe failure means the tool could not be
# fetched or built (offline), which is a skip; a real run failure after a
# good probe means findings, which is an error.
run_pinned() {
    local name="$1" mod="$2"
    shift 2
    if ! go run "$mod" -version >/dev/null 2>&1; then
        echo "lint-extra: SKIP $name ($mod): not fetchable (offline?)" >&2
        return 0
    fi
    echo "lint-extra: $name ($mod)"
    go run "$mod" "$@"
}

run_pinned staticcheck "honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION}" ./... || rc=1
run_pinned govulncheck "golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION}" ./... || rc=1

exit $rc
