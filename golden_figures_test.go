package livelock

// The golden figure-hash test is the perf work's no-drift contract:
// every figure in the paper's evaluation is regenerated at the benchOpts
// settings, rendered to canonical CSV, and its SHA-256 digest compared
// against the committed reference in testdata/golden-figures.json. Any
// change that alters a single byte of any figure — a scheduler reorder,
// an RNG draw moved, a float formatted differently — fails here, so
// engine and hot-path optimisations can be landed with proof that the
// science is untouched.
//
// When a change is *supposed* to move the results (a cost-model
// recalibration, a new series), regenerate the digests with
//
//	REGEN_GOLDEN=1 go test -run TestGoldenFigureHashes .
//
// and commit the updated JSON alongside the change, mirroring the
// REGEN_FUZZ_CORPUS workflow in internal/netstack.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

const goldenFigurePath = "testdata/golden-figures.json"

// goldenFigureCSVs renders every figure at the benchmark settings as
// canonical CSV, keyed by figure ID. The sweep runs through the
// parallel executor at the default worker count; worker count is proven
// not to change bytes by TestTimelineDeterministicAcrossWorkers and the
// executor's positional assembly.
func goldenFigureCSVs(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, fig := range AllFigures(benchOpts) {
		if len(fig.Errors) != 0 {
			t.Fatalf("figure %s sweep failed: %v", fig.ID, fig.Errors)
		}
		var buf bytes.Buffer
		if err := fig.WriteCSV(&buf); err != nil {
			t.Fatalf("figure %s: WriteCSV: %v", fig.ID, err)
		}
		if _, dup := out[fig.ID]; dup {
			t.Fatalf("duplicate figure ID %q", fig.ID)
		}
		out[fig.ID] = buf.String()
	}
	return out
}

func TestGoldenFigureHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep is slow")
	}
	csvs := goldenFigureCSVs(t)
	got := make(map[string]string, len(csvs))
	for id, csv := range csvs {
		sum := sha256.Sum256([]byte(csv))
		got[id] = hex.EncodeToString(sum[:])
	}

	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenFigurePath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFigurePath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s with %d figure digests", goldenFigurePath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenFigurePath)
	if err != nil {
		t.Fatalf("missing golden digests (run REGEN_GOLDEN=1 go test -run TestGoldenFigureHashes .): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenFigurePath, err)
	}

	var ids []string
	for id := range want {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		g, ok := got[id]
		if !ok {
			t.Errorf("figure %s in golden file but not produced by AllFigures", id)
			continue
		}
		if g != want[id] {
			t.Errorf("figure %s drifted: digest %s, golden %s\n%s", id, g, want[id],
				diffHint(csvs[id]))
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			t.Errorf("figure %s produced but missing from golden file (REGEN_GOLDEN=1 to adopt)", id)
		}
	}
}

// diffHint returns the first lines of the drifted CSV so the failure
// message shows what the figure looks like now without dumping the
// whole table.
func diffHint(csv string) string {
	const maxLen = 400
	if len(csv) > maxLen {
		csv = csv[:maxLen] + "..."
	}
	return fmt.Sprintf("current CSV starts:\n%s", csv)
}
