// Burstlatency: §4.3's latency pathology — in the interrupt-driven
// kernel the first packet of a burst "is not delivered to the user until
// link-level processing has been completed for all the packets in the
// burst", because link-level work runs at a higher IPL than everything
// after it. The polled kernel processes each packet to completion, so
// the first packet's latency is independent of burst length.
//
// For NFS-style request bursts this is the difference between the
// server's disk starting to seek immediately and sitting idle while the
// CPU shovels the rest of the burst off the wire.
package main

import (
	"fmt"

	"livelock"
)

func main() {
	opts := livelock.Options{}
	fmt.Println("first-of-burst forwarding latency (wire-speed bursts, one per 50ms):")
	fmt.Printf("%8s %22s %22s\n", "burst", "interrupt-driven", "polled (quota 5)")
	for _, n := range []int{1, 4, 8, 16, 32} {
		u := livelock.BurstLatency(livelock.ModeUnmodified, n, opts)
		p := livelock.BurstLatency(livelock.ModePolled, n, opts)
		fmt.Printf("%8d %22v %22v\n", n, u.FirstPkt, p.FirstPkt)
	}
	fmt.Println("\nInterrupt-driven latency grows with burst length; polled stays flat (§4.3).")
}
