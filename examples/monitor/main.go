// Monitor: the paper's second motivating application (§2) — "network
// managers, developers, and researchers commonly use UNIX systems, with
// their network interfaces in promiscuous mode, to monitor traffic on a
// LAN". A BPF-style tap copies every received packet's metadata into a
// bounded capture buffer drained by a user-mode monitoring process.
//
// Under a flood the monitor is just another starved user process: its
// buffer overflows and the capture is full of holes. §6.6.1 suggests
// applying queue-state feedback to packet-filter queues but warns the
// policy "would be more complex" — because inhibiting input to protect
// the monitor also throttles forwarding. This example shows both sides
// of that trade.
package main

import (
	"fmt"

	"livelock"
)

func run(feedback bool, rate float64) (lossPct, fwd float64) {
	eng := livelock.NewEngine()
	r := livelock.NewRouter(eng, livelock.Config{Mode: livelock.ModePolled, Quota: 5})
	mon := r.StartMonitor(livelock.MonitorConfig{
		ProcessCost: 50 * livelock.Microsecond,
		Feedback:    feedback,
	})
	gen := r.AttachGenerator(0, livelock.ConstantRate{Rate: rate, JitterFrac: 0.05}, 0)
	gen.Start()
	eng.Run(livelock.Time(2 * livelock.Second))
	return mon.LossRate() * 100, float64(r.Delivered()) / 2
}

func main() {
	fmt.Println("promiscuous monitor on the router, flood on the input Ethernet:")
	fmt.Printf("%8s | %14s %14s | %14s %14s\n",
		"", "no feedback", "", "filter-queue feedback", "")
	fmt.Printf("%8s | %14s %14s | %14s %14s\n",
		"offered", "capture loss", "forwarded", "capture loss", "forwarded")
	for _, rate := range []float64{2000, 5000, 8000, 12000} {
		l0, f0 := run(false, rate)
		l1, f1 := run(true, rate)
		fmt.Printf("%8.0f | %13.1f%% %14.0f | %13.1f%% %14.0f\n", rate, l0, f0, l1, f1)
	}
	fmt.Println("\nWithout feedback the monitor starves (lossy capture) while forwarding")
	fmt.Println("runs at full speed; with feedback the capture is complete but input")
	fmt.Println("inhibition slows forwarding — the policy entanglement §6.6.1 warns about.")
}
