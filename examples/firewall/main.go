// Firewall: the paper's motivating scenario (§2, §6) — a UNIX screening
// router running the user-mode screend filter must survive a packet
// flood, because "since firewalls typically use UNIX-based routers, they
// must be livelock-proof in order to prevent denial-of-service attacks."
//
// This example floods three firewall configurations and reports what
// survives: the unmodified kernel livelocks completely; polling alone
// does not help (the screend queue still starves); polling plus
// queue-state feedback keeps filtering at full capacity.
package main

import (
	"fmt"

	"livelock"
)

func main() {
	const attackRate = 11000 // pkts/sec flood, e.g. a smurf-style attack

	configs := []struct {
		name string
		cfg  livelock.Config
	}{
		{"unmodified kernel", livelock.Config{
			Mode: livelock.ModeUnmodified, Screend: true, ScreendRules: 8}},
		{"polled, no feedback", livelock.Config{
			Mode: livelock.ModePolled, Quota: 10, Screend: true, ScreendRules: 8}},
		{"polled + queue feedback", livelock.Config{
			Mode: livelock.ModePolled, Quota: 10, Screend: true, ScreendRules: 8,
			Feedback: true}},
	}

	fmt.Printf("flooding a screend firewall at %d pkts/sec:\n\n", attackRate)
	for _, c := range configs {
		res := livelock.RunTrial(c.cfg, attackRate, livelock.Warmup, livelock.Measure)
		verdict := "LIVELOCKED — the firewall is off the air"
		if res.OutputRate > 1000 {
			verdict = "alive and filtering"
		}
		fmt.Printf("%-26s forwarded %5.0f pkts/s   %s\n", c.name, res.OutputRate, verdict)
		a := res.Accounting
		fmt.Printf("%-26s drops: ring=%d (cheap)  screend-queue=%d (wasted work)\n\n",
			"", a.RingDrops, a.ScreendDrops)
	}

	fmt.Println("With feedback, overload drops move to the interface ring, before any")
	fmt.Println("CPU has been invested — the key principle of §6.6.1.")
}
