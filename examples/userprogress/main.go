// Userprogress: §7's experiment — a compute-bound process on a flooded
// router. Without the cycle limiter the router forwards at full speed
// but the process makes no measurable progress; with a cycle threshold,
// the kernel explicitly regulates packet-processing CPU and the process
// keeps a predictable share.
package main

import (
	"fmt"

	"livelock"
)

func main() {
	const floodRate = 10000

	fmt.Printf("compute-bound process on a router flooded at %d pkts/sec:\n\n", floodRate)
	fmt.Printf("%-24s %12s %14s\n", "cycle-limit threshold", "user CPU %", "forwarded pps")
	for _, th := range []float64{0, 0.25, 0.50, 0.75} {
		cfg := livelock.Config{
			Mode: livelock.ModePolled, Quota: 5,
			UserProcess:         true,
			CycleLimitThreshold: th,
		}
		res := livelock.RunTrial(cfg, floodRate, livelock.Warmup, livelock.Measure)
		label := "none (starved)"
		if th > 0 {
			label = fmt.Sprintf("%.0f %%", th*100)
		}
		fmt.Printf("%-24s %11.1f%% %14.0f\n", label, res.UserCPUFrac*100, res.OutputRate)
	}

	idle := livelock.RunTrial(livelock.Config{
		Mode: livelock.ModePolled, Quota: 5, UserProcess: true, CycleLimitThreshold: 0.5,
	}, 0, livelock.Warmup, livelock.Measure)
	fmt.Printf("\nbaseline with no input load: user gets %.1f%% (system overhead ≈6%%, §7)\n",
		idle.UserCPUFrac*100)
}
