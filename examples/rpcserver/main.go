// Rpcserver: the paper's end-system motivation (§2) — "servers for
// protocols such as NFS are commonly built from UNIX systems" and are
// "potentially exposed to heavy, non-flow-controlled loads". An
// RPC-style UDP server runs *on* the router host; clients flood it with
// requests at increasing rates. Delivered throughput here means
// request/response completions — "the rate at which the system delivers
// packets to their ultimate consumers" (§3).
//
// The interrupt-driven kernel serves nothing once the request rate
// saturates interrupt-level processing: requests die on kernel queues
// before the server process ever runs. Plain polling is not enough —
// the polling thread outranks the server process exactly as interrupts
// did. The §7 cycle limiter, or §6.6.1's queue-state feedback applied
// to the server's socket buffer, fixes it.
package main

import (
	"fmt"

	"livelock"
)

func serve(mode livelock.Mode, threshold float64, sockFB bool, rate float64) (served, replied float64) {
	eng := livelock.NewEngine()
	cfg := livelock.Config{Mode: mode, Quota: 5, CycleLimitThreshold: threshold}
	r := livelock.NewRouter(eng, cfg)
	app := r.StartApp(livelock.AppConfig{
		Port:        2049, // the NFS port
		RecvCost:    80 * livelock.Microsecond,
		ProcessCost: 120 * livelock.Microsecond, // cache hit / attr lookup
		ReplyBytes:  128,
		ReplyCost:   80 * livelock.Microsecond,
		Feedback:    sockFB,
	})
	gen := r.AttachGeneratorTo(0, livelock.RouterIP(0), 2049,
		livelock.ConstantRate{Rate: rate, JitterFrac: 0.05}, 0)
	gen.Start()
	eng.Run(livelock.Time(500 * livelock.Millisecond))
	s0, r0 := app.Served.Value(), app.Replied.Value()
	eng.RunFor(2 * livelock.Second)
	return float64(app.Served.Value()-s0) / 2, float64(app.Replied.Value()-r0) / 2
}

func main() {
	fmt.Println("RPC (NFS-style) server on the router host; requests/sec served:")
	fmt.Printf("%8s %18s %18s %20s %20s\n",
		"offered", "interrupt-driven", "polled (quota 5)", "polled+cycle 50%", "polled+sock feedback")
	for _, rate := range []float64{1000, 2000, 3000, 5000, 8000, 12000} {
		u, _ := serve(livelock.ModeUnmodified, 0, false, rate)
		p, _ := serve(livelock.ModePolled, 0, false, rate)
		c, _ := serve(livelock.ModePolled, 0.5, false, rate)
		f, _ := serve(livelock.ModePolled, 0, true, rate)
		fmt.Printf("%8.0f %18.0f %18.0f %20.0f %20.0f\n", rate, u, p, c, f)
	}
	fmt.Println("\nThe interrupt-driven server livelocks: kernel receive work starves the")
	fmt.Println("server process itself (§2/§4.2). Polling alone is not enough — the poll")
	fmt.Println("thread outranks the server just like interrupts did. The §7 cycle limiter")
	fmt.Println("or §6.6.1 queue feedback applied to the socket buffer fixes it.")
}
