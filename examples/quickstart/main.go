// Quickstart: build a simulated router, offer it a UDP flood, and see
// the difference between the interrupt-driven kernel (which livelocks)
// and the paper's polled kernel (which does not).
package main

import (
	"fmt"

	"livelock"
)

func main() {
	const floodRate = 10000 // pkts/sec, far beyond the ~4700 pkts/sec MLFRR

	for _, kcfg := range []struct {
		name string
		cfg  livelock.Config
	}{
		{"interrupt-driven (4.2BSD-style)", livelock.Config{Mode: livelock.ModeUnmodified}},
		{"polled with quota 5 (the paper's fix)", livelock.Config{Mode: livelock.ModePolled, Quota: 5}},
	} {
		res := livelock.RunTrial(kcfg.cfg, floodRate, livelock.Warmup, livelock.Measure)
		fmt.Printf("%-40s offered %6.0f pkts/s → forwarded %6.0f pkts/s (p50 latency %v)\n",
			kcfg.name, res.InputRate, res.OutputRate, res.LatencyP50)
	}

	fmt.Println("\nWhere did the interrupt-driven kernel's packets go?")
	res := livelock.RunTrial(livelock.Config{Mode: livelock.ModeUnmodified},
		floodRate, livelock.Warmup, livelock.Measure)
	a := res.Accounting
	fmt.Printf("  dropped at ipintrq after device-level work was spent: %d\n", a.IPIntrQDrops)
	fmt.Printf("  dropped cheaply at the interface ring:                %d\n", a.RingDrops)
	fmt.Println("That wasted per-packet work is receive livelock (§6.3 of the paper).")
}
