// Flowcontrol: §1's framing of the whole problem — traditional
// applications are flow-controlled, so they never livelock a server;
// datagram floods are not, so they do. The same RPC server on the same
// interrupt-driven kernel is driven two ways:
//
//   - an open-loop UDP flood ("multicast and broadcast protocols subject
//     innocent-bystander hosts to loads that do not interest them at
//     all"), which drives the server into livelock; and
//   - a closed-loop, windowed client (the "negative feedback loop to
//     control the sources" the paper says floods lack), which self-clocks
//     to the server's service rate and never collapses.
package main

import (
	"fmt"

	"livelock"
)

func main() {
	appCfg := livelock.AppConfig{
		Port:        2049,
		RecvCost:    80 * livelock.Microsecond,
		ProcessCost: 120 * livelock.Microsecond,
		ReplyBytes:  64,
		ReplyCost:   80 * livelock.Microsecond,
	}

	fmt.Println("the same server, interrupt-driven kernel, two kinds of source:")
	fmt.Printf("\n%-34s %14s %14s\n", "open-loop UDP flood", "offered", "served/sec")
	for _, rate := range []float64{1000, 3000, 6000, 12000} {
		eng := livelock.NewEngine()
		r := livelock.NewRouter(eng, livelock.Config{Mode: livelock.ModeUnmodified})
		app := r.StartApp(appCfg)
		gen := r.AttachGeneratorTo(0, livelock.RouterIP(0), 2049,
			livelock.ConstantRate{Rate: rate, JitterFrac: 0.05}, 0)
		gen.Start()
		eng.Run(livelock.Time(2 * livelock.Second))
		fmt.Printf("%-34s %14.0f %14.0f\n", "", rate, float64(app.Served.Value())/2)
	}

	fmt.Printf("\n%-34s %14s %14s %10s\n", "closed-loop windowed client", "window", "served/sec", "p50 RTT")
	for _, window := range []int{1, 4, 16, 64} {
		eng := livelock.NewEngine()
		r := livelock.NewRouter(eng, livelock.Config{Mode: livelock.ModeUnmodified})
		app := r.StartApp(appCfg)
		client := r.AttachClient(0, livelock.ClientConfig{Port: 2049, Window: window})
		client.Start()
		eng.Run(livelock.Time(2 * livelock.Second))
		fmt.Printf("%-34s %14d %14.0f %10v\n", "",
			window, float64(app.Served.Value())/2, client.RTT.Quantile(0.5))
	}

	fmt.Println("\nThe flood drives the unmodified kernel to zero; the windowed client")
	fmt.Println("saturates the server and stays there, whatever the window. Livelock is")
	fmt.Println("a property of non-flow-controlled load meeting interrupt priority (§1).")
}
