// Tcpbulk: the experiment §7.1 wanted but could not run — "The changes
// we made to the kernel potentially affect the performance of
// end-system transport protocols, such as TCP ... we cannot yet measure
// this effect." Here a Tahoe-style TCP bulk sender (slow start,
// congestion avoidance, fast retransmit, RTO backoff — all implemented
// over real headers and checksums) streams into a receiver on the
// router host while a UDP flood arrives on a second interface.
//
// On the interrupt-driven kernel the flood starves TCP completely: data
// segments die at interrupt level and the ACK clock stops. The polled
// kernel's round-robin across interfaces keeps the transfer at full
// wire-limited goodput regardless of the flood.
package main

import (
	"fmt"

	"livelock"
)

func main() {
	fmt.Println("TCP bulk transfer into the router host vs background UDP flood (§7.1):")
	fmt.Printf("%12s %22s %22s\n", "flood pps", "unmodified", "polled (quota 5)")
	opts := livelock.Options{}
	rates := []float64{0, 2000, 4000, 8000, 12000}
	unmod := livelock.TCPUnderFlood(livelock.ModeUnmodified, rates, opts)
	polled := livelock.TCPUnderFlood(livelock.ModePolled, rates, opts)
	for i, rate := range rates {
		fmt.Printf("%12.0f %15.0f kB/s %15.0f kB/s\n",
			rate, unmod[i].GoodputBps/1000, polled[i].GoodputBps/1000)
	}
	fmt.Println("\nThe ACK clock is the victim: once receive livelock sets in, segments")
	fmt.Println("never reach the TCP layer, no ACKs flow, and the sender sits in")
	fmt.Println("exponential-backoff timeouts. Round-robin polling keeps both the data")
	fmt.Println("and the ACK path moving (§5.2, §7.1).")
}
