module livelock

go 1.22
